// Differential / property / stress harness for the truly-async migration
// copy engine (src/migration/async_copy.h, DESIGN.md §14).
//
// Three layers of proof:
//   * differential: the same seeded workload must produce byte-identical
//     metrics JSONL, Chrome trace, and report JSON for every
//     --migrate-threads value — including under --fault_spec chaos — and
//     the serial run must match the pre-existing tests/golden/ files
//     (generated before the copy engine existed);
//   * property: seeded copy-shard invariants (disjoint full coverage,
//     huge-page clean breaks, shard-order merge independence) and §7.2
//     write-fault fallback properties (a write inside an in-flight window
//     forces sync fallback exactly once, no lost updates, the fallback
//     counter is monotone, checksums match serial references);
//   * stress: async migration x pingpong workload x ppt admission, the
//     adversarial combination, differential across thread counts. The full
//     suite runs under TSan in CI, so the helper-thread copies are also
//     race-checked.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/core/solution.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/migration/admission/admission.h"
#include "src/migration/async_copy.h"
#include "src/migration/mechanism.h"
#include "src/migration/migration_engine.h"
#include "src/obs/obs.h"
#include "src/sim/access_engine.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"

namespace mtm {
namespace {

// ------------------------------------------------- differential harness --

struct RunArtifacts {
  std::string metrics_jsonl;
  std::string trace_json;
  std::string report_json;
  MigrationStats migration;
};

// Mirrors the CI observability smoke invocation of mtmsim:
//   mtmsim --workload=gups --solution=mtm --intervals=12 --accesses=3000000
RunArtifacts RunWithMigrateThreads(u32 migrate_threads, const std::string& fault_spec = "") {
  ExperimentConfig config;
  config.num_intervals = 12;
  config.target_accesses = 3'000'000;
  config.mtm.migrate_threads = migrate_threads;
  config.fault_spec = fault_spec;
  Observability obs;
  RunOptions options;
  options.obs = &obs;
  RunResult result = RunExperiment("gups", SolutionKind::kMtm, config, options);

  RunArtifacts artifacts;
  std::ostringstream metrics;
  obs.timeline.WriteJsonl(metrics, obs.metrics);
  artifacts.metrics_jsonl = metrics.str();
  std::ostringstream trace;
  obs.trace.WriteChromeTrace(trace);
  artifacts.trace_json = trace.str();
  // mtmsim prints the report with a trailing newline; the goldens carry it.
  artifacts.report_json = Render(result, ReportFormat::kJson) + "\n";
  artifacts.migration = result.migration_stats;
  return artifacts;
}

std::string ReadGolden(const std::string& name) {
  std::ifstream in(std::string(MTM_TESTS_GOLDEN_DIR) + "/" + name, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << name;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void ExpectSameCopyStats(const MigrationStats& a, const MigrationStats& b,
                         const std::string& label) {
  EXPECT_EQ(a.async_copies, b.async_copies) << label;
  EXPECT_EQ(a.copy_shards, b.copy_shards) << label;
  EXPECT_EQ(a.async_copy_bytes, b.async_copy_bytes) << label;
  EXPECT_EQ(a.fallback_copy_bytes, b.fallback_copy_bytes) << label;
  EXPECT_EQ(a.copy_checksum, b.copy_checksum) << label;
  EXPECT_EQ(a.sync_fallbacks, b.sync_fallbacks) << label;
}

TEST(ParallelMigrationTest, MigrateThreadsProduceByteIdenticalArtifacts) {
  RunArtifacts serial = RunWithMigrateThreads(1);
  // The run must actually exercise both copy paths, or this differential
  // proves nothing: staged commits and §7.2 write-fault fallbacks.
  EXPECT_GT(serial.migration.async_copies, 0u);
  EXPECT_GT(serial.migration.sync_fallbacks, 0u);
  EXPECT_GT(serial.migration.copy_shards, 0u);
  EXPECT_NE(serial.migration.copy_checksum, 0u);
  for (u32 threads : {2u, 8u}) {
    RunArtifacts parallel = RunWithMigrateThreads(threads);
    std::string label = "migrate_threads=" + std::to_string(threads);
    EXPECT_EQ(serial.metrics_jsonl, parallel.metrics_jsonl) << label;
    EXPECT_EQ(serial.trace_json, parallel.trace_json) << label;
    EXPECT_EQ(serial.report_json, parallel.report_json) << label;
    ExpectSameCopyStats(serial.migration, parallel.migration, label);
  }
}

TEST(ParallelMigrationTest, SerialRunMatchesPreAsyncGoldens) {
  // The goldens predate the copy engine (PR 4/PR 6 vintage): a default
  // (--migrate-threads=1) run staging real copies must not move a byte of
  // output.
  RunArtifacts serial = RunWithMigrateThreads(1);
  EXPECT_EQ(serial.metrics_jsonl, ReadGolden("scan_gups_metrics.jsonl"));
  EXPECT_EQ(serial.trace_json, ReadGolden("scan_gups_trace.json"));
  EXPECT_EQ(serial.report_json, ReadGolden("scan_gups_report.json"));
}

TEST(ParallelMigrationTest, ParallelRunMatchesPreAsyncGoldens) {
  RunArtifacts parallel = RunWithMigrateThreads(8);
  EXPECT_EQ(parallel.metrics_jsonl, ReadGolden("scan_gups_metrics.jsonl"));
  EXPECT_EQ(parallel.trace_json, ReadGolden("scan_gups_trace.json"));
  EXPECT_EQ(parallel.report_json, ReadGolden("scan_gups_report.json"));
}

TEST(ParallelMigrationTest, MigrateThreadsByteIdenticalUnderChaos) {
  // Injected copy/remap/alloc faults exercise every Cancel path in the
  // engine (rollbacks, retries, abandons); thread count must still not leak
  // into any output.
  const std::string spec = "copy_fail:p=0.02;remap_fail:p=0.01;alloc_fail:p=0.01";
  RunArtifacts serial = RunWithMigrateThreads(1, spec);
  EXPECT_GT(serial.migration.rollbacks, 0u);
  for (u32 threads : {2u, 8u}) {
    RunArtifacts parallel = RunWithMigrateThreads(threads, spec);
    std::string label = "chaos migrate_threads=" + std::to_string(threads);
    EXPECT_EQ(serial.metrics_jsonl, parallel.metrics_jsonl) << label;
    EXPECT_EQ(serial.trace_json, parallel.trace_json) << label;
    EXPECT_EQ(serial.report_json, parallel.report_json) << label;
    ExpectSameCopyStats(serial.migration, parallel.migration, label);
  }
}

// ------------------------------------------------ shard-plan properties --

// Random still-to-move snapshot: huge frames in address order, each either
// one 2 MiB record or a random subset of its 4 KiB base pages (a region
// mid-split), with random gaps between frames (pages already on dst).
std::vector<PageCopyRecord> RandomSnapshot(Rng& rng) {
  std::vector<PageCopyRecord> pages;
  const u64 frames = 1 + rng.NextBounded(24);
  VirtAddr frame = VirtAddr(GiB(1).value());
  for (u64 f = 0; f < frames; ++f) {
    frame = frame + (1 + rng.NextBounded(3)) * kHugePageBytes;
    if (rng.NextBounded(2) == 0) {
      pages.push_back(PageCopyRecord{frame, kHugePageBytes, ComponentId{2}, rng.Next()});
    } else {
      for (u64 p = 0; p < kPagesPerHugePage; ++p) {
        if (rng.NextBounded(4) == 0) {
          pages.push_back(PageCopyRecord{frame + p * kPageBytes.value(), kPageBytes,
                                         ComponentId{3}, rng.Next()});
        }
      }
    }
  }
  return pages;
}

TEST(CopyShardPlanTest, ShardsPartitionTheSnapshot) {
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<PageCopyRecord> pages = RandomSnapshot(rng);
    std::vector<CopyShard> shards = PlanCopyShards(pages, Bytes{});
    if (pages.empty()) {
      EXPECT_TRUE(shards.empty());
      continue;
    }
    // Disjoint full coverage: shard index ranges are contiguous, in order,
    // and cover [0, pages.size()) exactly once.
    std::size_t next = 0;
    Bytes total;
    for (const CopyShard& shard : shards) {
      EXPECT_EQ(shard.first, next);
      EXPECT_GT(shard.count, 0u);
      Bytes bytes;
      for (std::size_t i = 0; i < shard.count; ++i) {
        bytes += pages[shard.first + i].size;
      }
      EXPECT_EQ(bytes, shard.bytes);
      next = shard.first + shard.count;
      total += shard.bytes;
    }
    EXPECT_EQ(next, pages.size());
    Bytes expected;
    for (const PageCopyRecord& page : pages) {
      expected += page.size;
    }
    EXPECT_EQ(total, expected);
  }
}

TEST(CopyShardPlanTest, ShardsBreakOnlyAtHugeFrameBoundaries) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<PageCopyRecord> pages = RandomSnapshot(rng);
    std::vector<CopyShard> shards = PlanCopyShards(pages, Bytes{});
    for (std::size_t s = 1; s < shards.size(); ++s) {
      // Clean break: the first record of a shard starts a new 2 MiB huge
      // frame, so one huge page's base-page remnants never split.
      const PageCopyRecord& head = pages[shards[s].first];
      const PageCopyRecord& prev = pages[shards[s].first - 1];
      EXPECT_NE(HugeAlignDown(head.addr), HugeAlignDown(prev.addr))
          << "shard " << s << " splits a huge frame";
    }
  }
}

TEST(CopyShardPlanTest, JoinResultIndependentOfThreadCount) {
  Rng rng(0xFEED);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<PageCopyRecord> pages = RandomSnapshot(rng);
    // Shard-order merge reference, built from the plan by hand.
    std::vector<CopyShard> shards = PlanCopyShards(pages, Bytes{});
    u64 expected = kCopyChecksumSeed;
    for (const CopyShard& shard : shards) {
      u64 piece = kCopyChecksumSeed;
      for (std::size_t i = 0; i < shard.count; ++i) {
        piece = FoldCopyChecksum(piece, CopyPageContent(pages[shard.first + i]));
      }
      expected = FoldCopyChecksum(expected, piece);
    }
    for (u32 threads : {1u, 4u}) {
      AsyncCopyEngine engine(threads);
      AsyncCopyEngine::Ticket ticket = engine.Begin(pages);
      RegionCopyResult result = engine.Join(ticket);
      EXPECT_EQ(result.checksum, expected) << "threads=" << threads;
      EXPECT_EQ(result.shards, shards.size()) << "threads=" << threads;
      EXPECT_EQ(engine.in_flight(), 0u);
    }
  }
}

TEST(CopyShardPlanTest, CancelDiscardsWithoutSideEffects) {
  Rng rng(0xD00D);
  std::vector<PageCopyRecord> pages = RandomSnapshot(rng);
  AsyncCopyEngine engine(4);
  AsyncCopyEngine::Ticket a = engine.Begin(pages);
  AsyncCopyEngine::Ticket b = engine.Begin(pages);
  EXPECT_EQ(engine.in_flight(), 2u);
  engine.Cancel(a);
  RegionCopyResult result = engine.Join(b);
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_NE(result.checksum, 0u);
}

// ------------------------------------------- write-fault fallback (§7.2) --

class AsyncFallbackTest : public ::testing::Test {
 protected:
  AsyncFallbackTest()
      : machine_(Machine::OptaneFourTier(512)),
        frames_(machine_),
        counters_(machine_.num_components()),
        t1_(machine_.TierOrder(0)[0]),
        t3_(machine_.TierOrder(0)[2]) {}

  VirtAddr BuildMapped(Bytes bytes, ComponentId component, bool huge) {
    u32 vma = address_space_.Allocate(bytes, huge, "w");
    VirtAddr start = address_space_.vma(vma).start;
    EXPECT_TRUE(page_table_.MapRange(start, address_space_.vma(vma).len, component, huge).ok());
    EXPECT_TRUE(frames_.Reserve(component, address_space_.vma(vma).len).ok());
    return start;
  }

  MigrationEngine MakeEngine(u32 migrate_threads) {
    MigrationEngine engine(machine_, page_table_, frames_, address_space_, counters_, clock_,
                           MechanismKind::kMoveMemoryRegions);
    engine.set_migrate_threads(migrate_threads);
    return engine;
  }

  // Still-to-move snapshot of [start, len) toward dst, the engine's own
  // staging rule re-derived for reference checksums.
  std::vector<PageCopyRecord> LiveRecords(VirtAddr start, Bytes len, ComponentId dst) {
    std::vector<PageCopyRecord> records;
    const PageTable& pt = page_table_;
    pt.ForEachMapping(start, len, [&](VirtAddr addr, Bytes size, const Pte& pte) {
      if (pte.component == dst) {
        return;
      }
      records.push_back(PageCopyRecord{addr, size, pte.component, pte.payload});
    });
    return records;
  }

  // What stats().copy_checksum holds after one staged (async) commit.
  static u64 StagedChecksum(const std::vector<PageCopyRecord>& records) {
    std::vector<CopyShard> shards = PlanCopyShards(records, Bytes{});
    u64 region = kCopyChecksumSeed;
    for (const CopyShard& shard : shards) {
      u64 piece = kCopyChecksumSeed;
      for (std::size_t i = 0; i < shard.count; ++i) {
        piece = FoldCopyChecksum(piece, CopyPageContent(records[shard.first + i]));
      }
      region = FoldCopyChecksum(region, piece);
    }
    return FoldCopyChecksum(0, region);
  }

  // What stats().copy_checksum holds after one §7.2 serial re-copy (flat
  // fold, no shard structure: the fallback is a single synchronous pass).
  static u64 SerialChecksum(const std::vector<PageCopyRecord>& records) {
    u64 region = kCopyChecksumSeed;
    for (const PageCopyRecord& record : records) {
      region = FoldCopyChecksum(region, CopyPageContent(record));
    }
    return FoldCopyChecksum(0, region);
  }

  Machine machine_;
  SimClock clock_;
  PageTable page_table_;
  AddressSpace address_space_;
  FrameAllocator frames_;
  MemCounters counters_;
  ComponentId t1_, t3_;
};

TEST_F(AsyncFallbackTest, WriteInWindowForcesSyncFallbackExactlyOnce) {
  VirtAddr start = BuildMapped(MiB(4), t3_, false);
  MigrationEngine engine = MakeEngine(4);
  ASSERT_TRUE(engine.Submit(MigrationOrder{start, MiB(2), t1_, 0}).ok());
  EXPECT_EQ(engine.pending(), 1u);
  engine.OnWriteTrackFault(start + kPageSize, 0);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.stats().sync_fallbacks, 1u);
  EXPECT_EQ(engine.stats().fallback_copy_bytes, MiB(2));
  EXPECT_EQ(engine.stats().async_copies, 0u);
  // A second fault against the same (now committed) region is a no-op: the
  // fallback fires exactly once per in-flight window.
  engine.OnWriteTrackFault(start + kPageSize, 0);
  EXPECT_EQ(engine.stats().sync_fallbacks, 1u);
  EXPECT_EQ(engine.stats().fallback_copy_bytes, MiB(2));
}

TEST_F(AsyncFallbackTest, FallbackChecksumMatchesSerialReference) {
  VirtAddr start = BuildMapped(MiB(4), t3_, false);
  MigrationEngine engine = MakeEngine(4);
  ASSERT_TRUE(engine.Submit(MigrationOrder{start, MiB(2), t1_, 0}).ok());
  // No write mutated any payload between submit and fault, so the serial
  // re-copy reads exactly the staged contents — and must still discard the
  // helper-thread result and re-fold flat (§7.2 "must be copied again").
  u64 expected = SerialChecksum(LiveRecords(start, MiB(2), t1_));
  engine.OnWriteTrackFault(start, 0);
  EXPECT_EQ(engine.stats().copy_checksum, expected);
}

TEST_F(AsyncFallbackTest, AsyncCommitChecksumMatchesShardMergeReference) {
  VirtAddr start = BuildMapped(MiB(8), t3_, true);
  MigrationEngine engine = MakeEngine(4);
  ASSERT_TRUE(engine.Submit(MigrationOrder{start, MiB(8), t1_, 0}).ok());
  u64 expected = StagedChecksum(LiveRecords(start, MiB(8), t1_));
  clock_.AdvanceApp(Seconds(1));
  engine.Poll();
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.stats().async_copies, 1u);
  EXPECT_EQ(engine.stats().copy_shards, 4u);  // one shard per huge frame
  EXPECT_EQ(engine.stats().async_copy_bytes, MiB(8));
  EXPECT_EQ(engine.stats().copy_checksum, expected);
}

TEST_F(AsyncFallbackTest, EngineChecksumsIndependentOfMigrateThreads) {
  // Two identical scenarios, one serial and one with helper threads: every
  // copy-engine stat must agree. (The driver-level differential above
  // covers the full system; this pins the engine in isolation.)
  MigrationStats results[2];
  int slot = 0;
  for (u32 threads : {1u, 4u}) {
    SimClock clock;
    PageTable page_table;
    AddressSpace address_space;
    FrameAllocator frames(machine_);
    MemCounters counters(machine_.num_components());
    u32 vma = address_space.Allocate(MiB(8), false, "w");
    VirtAddr start = address_space.vma(vma).start;
    ASSERT_TRUE(page_table.MapRange(start, MiB(8), t3_, false).ok());
    ASSERT_TRUE(frames.Reserve(t3_, MiB(8)).ok());
    // Distinct per-page contents so a mis-merged checksum cannot collide.
    u64 salt = 0;
    page_table.ForEachMapping(start, MiB(8), [&](VirtAddr addr, Bytes, Pte& pte) {
      pte.payload = MixPayload(++salt, addr);
    });
    MigrationEngine engine(machine_, page_table, frames, address_space, counters, clock,
                           MechanismKind::kMoveMemoryRegions);
    engine.set_migrate_threads(threads);
    ASSERT_TRUE(engine.Submit(MigrationOrder{start, MiB(4), t1_, 0}).ok());
    clock.AdvanceApp(Seconds(1));
    engine.Poll();
    ASSERT_TRUE(engine.Submit(MigrationOrder{start + MiB(4).value(), MiB(4), t1_, 0}).ok());
    engine.OnWriteTrackFault(start + MiB(5).value(), 0);  // fallback leg
    results[slot++] = engine.stats();
  }
  ExpectSameCopyStats(results[0], results[1], "engine-level threads 1 vs 4");
  EXPECT_EQ(results[0].async_copies, 1u);
  EXPECT_EQ(results[0].sync_fallbacks, 1u);
}

TEST_F(AsyncFallbackTest, NoLostUpdates) {
  // The faulting write must land on the destination page: the fault joins
  // the copy *before* the write's effect, the serial re-copy commits the
  // pre-write contents, and the write then mutates the (moved) page — the
  // same end state as the real mechanism, where the blocked store retires
  // against the destination after the synchronous copy.
  VirtAddr start = BuildMapped(MiB(4), t3_, false);
  AccessEngine::Config config;
  config.num_threads = 1;
  AccessEngine access(machine_, page_table_, clock_, counters_, config);
  MigrationEngine engine = MakeEngine(4);
  access.set_write_track_observer(&engine);

  ASSERT_TRUE(engine.Submit(MigrationOrder{start, MiB(2), t1_, 0}).ok());
  const VirtAddr target = start + 3 * kPageSize;
  const u64 payload_before = page_table_.Find(target)->payload;
  access.Apply(target, /*is_write=*/true, 0);

  EXPECT_EQ(access.write_track_faults(), 1u);
  EXPECT_EQ(engine.stats().sync_fallbacks, 1u);
  Pte* pte = page_table_.Find(target);
  ASSERT_NE(pte, nullptr);
  EXPECT_EQ(pte->component, t1_);  // committed by the fallback
  EXPECT_EQ(pte->payload, MixPayload(payload_before, target));  // write survived
  EXPECT_FALSE(pte->write_tracked());
}

TEST_F(AsyncFallbackTest, FallbackCounterMonotone) {
  Rng rng(0x5EED);
  MigrationEngine engine = MakeEngine(2);
  u64 last = 0;
  for (int round = 0; round < 12; ++round) {
    VirtAddr start = BuildMapped(MiB(2), t3_, false);
    ASSERT_TRUE(engine.Submit(MigrationOrder{start, MiB(2), t1_, 0}).ok());
    if (rng.NextBounded(2) == 0) {
      engine.OnWriteTrackFault(start + rng.NextBounded(512) * kPageSize, 0);
    } else {
      clock_.AdvanceApp(Seconds(1));
      engine.Poll();
    }
    EXPECT_GE(engine.stats().sync_fallbacks, last);
    last = engine.stats().sync_fallbacks;
    EXPECT_EQ(engine.pending(), 0u);
  }
  EXPECT_EQ(engine.stats().async_copies + engine.stats().sync_fallbacks, 12u);
}

// ------------------------------------------------- thread-pool detached --

TEST(ThreadPoolJobTest, StartJobRunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<u32> hits(257, 0);
  ThreadPool::JobId job =
      pool.StartJob(hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  pool.WaitJob(job);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1u) << "task " << i;
  }
}

TEST(ThreadPoolJobTest, StartJobRunsInlineWhenSingleThreaded) {
  ThreadPool pool(1);
  std::vector<u32> hits(16, 0);
  ThreadPool::JobId job =
      pool.StartJob(hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  // No workers exist, so the batch completed inside StartJob.
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1u);
  }
  pool.WaitJob(job);
}

TEST(ThreadPoolJobTest, DetachedJobsInterleaveAndJoinOutOfOrder) {
  ThreadPool pool(3);
  std::vector<u32> a(64, 0);
  std::vector<u32> b(64, 0);
  ThreadPool::JobId ja = pool.StartJob(a.size(), [&a](std::size_t i) { a[i] += 1; });
  ThreadPool::JobId jb = pool.StartJob(b.size(), [&b](std::size_t i) { b[i] += 1; });
  pool.WaitJob(jb);  // reverse order
  pool.WaitJob(ja);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i] + b[i], 2u);
  }
}

TEST(ThreadPoolJobTest, ParallelForStillWorksAlongsideDetachedJobs) {
  ThreadPool pool(4);
  std::vector<u32> detached(128, 0);
  std::vector<u32> blocking(128, 0);
  ThreadPool::JobId job =
      pool.StartJob(detached.size(), [&detached](std::size_t i) { detached[i] += 1; });
  pool.ParallelFor(blocking.size(), [&blocking](std::size_t i) { blocking[i] += 1; });
  pool.WaitJob(job);
  for (std::size_t i = 0; i < detached.size(); ++i) {
    EXPECT_EQ(detached[i], 1u);
    EXPECT_EQ(blocking[i], 1u);
  }
}

// ------------------------------------------------------------- stress ----

TEST(ParallelMigrationStressTest, PingpongPptChaosIdenticalAcrossThreads) {
  // The adversarial combination: a ping-ponging workload under the ppt
  // admission controller with injected faults, so staged copies are
  // cancelled by rollbacks, re-staged by retries, and interleaved with
  // reclaim demotions — while helper threads run the copies. Run under
  // TSan via the CI matrix.
  auto run = [](u32 migrate_threads) {
    ExperimentConfig config;
    config.num_intervals = 10;
    config.target_accesses = 1'500'000;
    config.mtm.migrate_threads = migrate_threads;
    config.mtm.admission = AdmissionKind::kPpt;
    config.fault_spec = "copy_fail:p=0.02;alloc_fail:p=0.01";
    RunOptions options;
    RunResult result = RunExperiment("pingpong", SolutionKind::kMtm, config, options);
    return result;
  };
  RunResult serial = run(1);
  for (u32 threads : {8u}) {
    RunResult parallel = run(threads);
    std::string label = "pingpong migrate_threads=" + std::to_string(threads);
    EXPECT_EQ(Render(serial, ReportFormat::kJson), Render(parallel, ReportFormat::kJson))
        << label;
    EXPECT_EQ(Render(serial, ReportFormat::kCsv), Render(parallel, ReportFormat::kCsv))
        << label;
    ExpectSameCopyStats(serial.migration_stats, parallel.migration_stats, label);
  }
}

}  // namespace
}  // namespace mtm
