// Tests for the policy-as-plugin API: the FeatureVector stage, the policy
// registry, the FeaturePolicy adapter, and the export surfaces. The
// differential tests pin the PR's key invariant: the registry-constructed
// mtm policy AND the feature-driven WHI scorer reproduce the pre-refactor
// goldens byte for byte.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/core/solution.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/migration/admission/admission.h"
#include "src/migration/feature_policy.h"
#include "src/migration/features.h"
#include "src/migration/policy.h"
#include "src/migration/policy_registry.h"
#include "src/obs/obs.h"
#include "src/profiling/profiler.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"

namespace mtm {
namespace {

std::string ReadGolden(const std::string& name) {
  std::ifstream in(std::string(MTM_TESTS_GOLDEN_DIR) + "/" + name, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << name;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(PolicyRegistryTest, KnowsAllShippedPolicies) {
  PolicyParams params;
  params.promote_batch_bytes = MiB(2);
  const struct {
    const char* registered;
    const char* reported;
  } kExpected[] = {
      {"none", "none"},
      {"mtm", "mtm-policy"},
      {"mtm-policy", "mtm-policy"},
      {"autonuma", "tiered-autonuma"},
      {"tiered-autonuma", "tiered-autonuma"},
      {"vanilla-autonuma", "vanilla-tiered-autonuma"},
      {"vanilla-tiered-autonuma", "vanilla-tiered-autonuma"},
      {"autotiering", "autotiering"},
      {"hemem", "hemem"},
      {"mtm-feature", "mtm-feature"},
      {"logistic", "logistic"},
  };
  for (const auto& expected : kExpected) {
    EXPECT_TRUE(IsKnownPolicy(expected.registered)) << expected.registered;
    std::unique_ptr<TieringPolicy> policy = MakePolicy(expected.registered, params);
    ASSERT_NE(policy, nullptr) << expected.registered;
    EXPECT_EQ(policy->name(), expected.reported);
  }
  EXPECT_FALSE(IsKnownPolicy("nope"));
  EXPECT_EQ(MakePolicy("nope", params), nullptr);
  EXPECT_GE(KnownPolicyNames().size(), 11u);
}

TEST(PolicyRegistryTest, RegisterPolicyAddsPlugin) {
  class EchoPolicy : public TieringPolicy {
   public:
    std::string name() const override { return "echo"; }
    std::vector<MigrationOrder> Decide(const ProfileOutput&, PolicyContext&) override {
      return {};
    }
  };
  RegisterPolicy("test-echo", [](const PolicyParams&) -> std::unique_ptr<TieringPolicy> {
    return std::make_unique<EchoPolicy>();
  });
  PolicyParams params;
  params.promote_batch_bytes = MiB(2);
  std::unique_ptr<TieringPolicy> policy = MakePolicy("test-echo", params);
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->name(), "echo");
}

class FeaturesTest : public ::testing::Test {
 protected:
  FeaturesTest() : machine_(Machine::OptaneFourTier(512)), frames_(machine_) {
    ctx_.machine = &machine_;
    ctx_.page_table = &page_table_;
    ctx_.frames = &frames_;
  }

  HotnessEntry MakeRegion(Bytes bytes, ComponentId component, double hotness, u32 socket = 0) {
    u32 vma = address_space_.Allocate(bytes, false, "r");
    VirtAddr start = address_space_.vma(vma).start;
    EXPECT_TRUE(page_table_.MapRange(start, address_space_.vma(vma).len, component, false).ok());
    EXPECT_TRUE(frames_.Reserve(component, address_space_.vma(vma).len).ok());
    HotnessEntry e;
    e.start = start;
    e.len = bytes;
    e.hotness = hotness;
    e.preferred_socket = socket;
    return e;
  }

  static ProfileOutput Wrap(std::vector<HotnessEntry> entries) {
    ProfileOutput out;
    out.entries = std::move(entries);
    return out;
  }

  Machine machine_;
  PageTable page_table_;
  AddressSpace address_space_;
  FrameAllocator frames_;
  PolicyContext ctx_;
};

TEST_F(FeaturesTest, BuildFeaturesPopulatesProfileAndResidency) {
  ComponentId t3 = machine_.TierOrder(0)[2];
  HotnessEntry e = MakeRegion(MiB(2), t3, 2.5);
  e.latest_hi = 3.0;
  e.prev_hi = 1.0;
  e.skew = 0.25;
  std::vector<FeatureVector> features = BuildFeatures(Wrap({e}), ctx_);
  ASSERT_EQ(features.size(), 1u);
  const FeatureVector& f = features[0];
  EXPECT_EQ(f.start, e.start);
  EXPECT_EQ(f.len, e.len);
  EXPECT_EQ(f.resident, t3);
  EXPECT_EQ(f.tier_rank, 2u);
  EXPECT_DOUBLE_EQ(f.x[kFeatWhi], 2.5);
  EXPECT_DOUBLE_EQ(f.x[kFeatHi], 3.0);
  EXPECT_DOUBLE_EQ(f.x[kFeatTrend], 2.0);
  EXPECT_DOUBLE_EQ(f.x[kFeatSkew], 0.25);
  // 2 MiB = 512 base pages: log2(512)/16.
  EXPECT_DOUBLE_EQ(f.x[kFeatLogSizePages], 9.0 / 16.0);
  EXPECT_DOUBLE_EQ(f.x[kFeatTierRank], 2.0 / 3.0);
  // No history wired in: neutral ping-pong, never-moved recency.
  EXPECT_DOUBLE_EQ(f.x[kFeatPingPong], 0.0);
  EXPECT_DOUBLE_EQ(f.x[kFeatMoveRecency], 1.0);
}

TEST_F(FeaturesTest, BuildFeaturesReadsMigrationHistory) {
  ComponentId t3 = machine_.TierOrder(0)[2];
  HotnessEntry moved = MakeRegion(MiB(2), t3, 1.0);
  HotnessEntry still = MakeRegion(MiB(2), t3, 1.0);
  AdmissionTuning tuning;
  tuning.flip_window_ns = Millis(100);
  MigrationHistory history(tuning);
  history.RecordMove(moved.start, /*is_promotion=*/true, MiB(2), Millis(10));
  history.RecordMove(moved.start, /*is_promotion=*/false, MiB(2), Millis(20));
  history.RecordMove(moved.start, /*is_promotion=*/true, MiB(2), Millis(30));  // flip
  ctx_.history = &history;
  ctx_.now = Millis(50);
  ctx_.interval_ns = Millis(10);
  std::vector<FeatureVector> features = BuildFeatures(Wrap({moved, still}), ctx_);
  ASSERT_EQ(features.size(), 2u);
  EXPECT_GT(features[0].x[kFeatPingPong], 0.0);
  // Two intervals since the last move, capped at 32: 2/32.
  EXPECT_DOUBLE_EQ(features[0].x[kFeatMoveRecency], 2.0 / 32.0);
  EXPECT_DOUBLE_EQ(features[1].x[kFeatPingPong], 0.0);
  EXPECT_DOUBLE_EQ(features[1].x[kFeatMoveRecency], 1.0);
}

TEST_F(FeaturesTest, MtmScorePolicyMatchesMtmPolicyDecisions) {
  ComponentId t3 = machine_.TierOrder(0)[2];
  std::vector<HotnessEntry> entries;
  for (int i = 0; i < 6; ++i) {
    entries.push_back(MakeRegion(MiB(2), t3, 3.0 - 0.4 * i));
  }
  MtmPolicy::Config config;
  config.promote_batch_bytes = MiB(6);
  config.hotness_max = 3.0;
  MtmPolicy heuristic(config);
  FeatureDrivenPolicy feature_driven(std::make_unique<MtmScorePolicy>(config));
  std::vector<MigrationOrder> expected = heuristic.Decide(Wrap(entries), ctx_);
  std::vector<MigrationOrder> actual = feature_driven.Decide(Wrap(entries), ctx_);
  ASSERT_FALSE(expected.empty());
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].start, expected[i].start);
    EXPECT_EQ(actual[i].len, expected[i].len);
    EXPECT_EQ(actual[i].dst, expected[i].dst);
    EXPECT_EQ(actual[i].socket, expected[i].socket);
    EXPECT_EQ(actual[i].hotness, expected[i].hotness);
  }
}

TEST_F(FeaturesTest, HeatmapExporterEmitsRegionsInAddressOrder) {
  ComponentId t3 = machine_.TierOrder(0)[2];
  HotnessEntry low = MakeRegion(MiB(2), t3, 0.5);
  HotnessEntry high = MakeRegion(MiB(2), t3, 2.0);
  ProfileOutput profile = Wrap({high, low});  // reversed entry order
  std::vector<FeatureVector> features = BuildFeatures(profile, ctx_);
  HeatmapExporter exporter;
  exporter.OnInterval(0, Millis(1), profile, features);
  ASSERT_EQ(exporter.sink().lines(), 1u);
  const std::string& line = exporter.sink().contents();
  std::size_t first = line.find("\"start\":" + std::to_string(low.start.value()));
  std::size_t second = line.find("\"start\":" + std::to_string(high.start.value()));
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);  // low.start < high.start in output, too
}

// Runs the CI observability smoke configuration with an optional policy
// override and optional exporters attached.
struct DifferentialArtifacts {
  std::string metrics_jsonl;
  std::string trace_json;
  std::string report_json;
  std::string features_jsonl;
};

DifferentialArtifacts RunGupsMtm(const std::string& policy_override,
                                 bool with_exporters = false) {
  ExperimentConfig config;
  config.num_intervals = 12;
  config.target_accesses = 3'000'000;
  config.policy_override = policy_override;
  Observability obs;
  FeatureExporter feature_export;
  HeatmapExporter heatmap_export;
  RunOptions options;
  options.obs = &obs;
  if (with_exporters) {
    options.feature_export = &feature_export;
    options.heatmap_export = &heatmap_export;
  }
  RunResult result = RunExperiment("gups", SolutionKind::kMtm, config, options);

  DifferentialArtifacts artifacts;
  std::ostringstream metrics;
  obs.timeline.WriteJsonl(metrics, obs.metrics);
  artifacts.metrics_jsonl = metrics.str();
  std::ostringstream trace;
  obs.trace.WriteChromeTrace(trace);
  artifacts.trace_json = trace.str();
  artifacts.report_json = Render(result, ReportFormat::kJson) + "\n";
  artifacts.features_jsonl = feature_export.sink().contents();
  return artifacts;
}

TEST(PolicyDifferentialTest, RegistryMtmOverrideMatchesGoldens) {
  // --policy=mtm resolves through the registry instead of the hand-wired
  // switch; every artifact must still match the pre-registry goldens.
  DifferentialArtifacts artifacts = RunGupsMtm("mtm");
  EXPECT_EQ(artifacts.metrics_jsonl, ReadGolden("scan_gups_metrics.jsonl"));
  EXPECT_EQ(artifacts.trace_json, ReadGolden("scan_gups_trace.json"));
  EXPECT_EQ(artifacts.report_json, ReadGolden("scan_gups_report.json"));
}

TEST(PolicyDifferentialTest, FeatureDrivenMtmMatchesGoldens) {
  // The feature path (BuildFeatures -> MtmScorePolicy -> DecideByScore)
  // must make the exact decisions of the heuristic: metrics and trace are
  // byte-identical, and the report differs only by the gated policy
  // identity field.
  DifferentialArtifacts artifacts = RunGupsMtm("mtm-feature");
  EXPECT_EQ(artifacts.metrics_jsonl, ReadGolden("scan_gups_metrics.jsonl"));
  EXPECT_EQ(artifacts.trace_json, ReadGolden("scan_gups_trace.json"));
  std::string report = artifacts.report_json;
  const std::string policy_field = "\"policy\":\"mtm-feature\",";
  std::size_t at = report.find(policy_field);
  ASSERT_NE(at, std::string::npos);
  report.erase(at, policy_field.size());
  EXPECT_EQ(report, ReadGolden("scan_gups_report.json"));
}

TEST(PolicyDifferentialTest, ExportersDoNotPerturbTheRun) {
  // Attaching exporters is pure observation: the report stays byte-
  // identical to the golden run without them.
  DifferentialArtifacts artifacts = RunGupsMtm("", /*with_exporters=*/true);
  EXPECT_EQ(artifacts.report_json, ReadGolden("scan_gups_report.json"));
  EXPECT_EQ(artifacts.metrics_jsonl, ReadGolden("scan_gups_metrics.jsonl"));
  EXPECT_FALSE(artifacts.features_jsonl.empty());
}

TEST(PolicyDifferentialTest, FeatureExportIsDeterministic) {
  DifferentialArtifacts first = RunGupsMtm("", /*with_exporters=*/true);
  DifferentialArtifacts second = RunGupsMtm("", /*with_exporters=*/true);
  EXPECT_EQ(first.features_jsonl, second.features_jsonl);
}

TEST(PolicyDifferentialTest, LogisticFeatureDumpMatchesGolden) {
  // Mirrors the CI policy smoke invocation of mtmsim:
  //   mtmsim --workload=gups --solution=mtm --intervals=6 --accesses=1500000
  //          --policy=logistic --policy-features-out=...
  ExperimentConfig config;
  config.num_intervals = 6;
  config.target_accesses = 1'500'000;
  config.policy_override = "logistic";
  FeatureExporter feature_export;
  RunOptions options;
  options.feature_export = &feature_export;
  RunExperiment("gups", SolutionKind::kMtm, config, options);
  EXPECT_EQ(feature_export.sink().contents(), ReadGolden("features_gups_logistic.jsonl"));
}

}  // namespace
}  // namespace mtm
