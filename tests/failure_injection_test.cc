// Failure-injection and pressure tests: what happens when tiers run out of
// space, PEBS buffers overflow, migrations have nowhere to go, the address
// space outgrows the machine — and, with the FaultInjector armed, when
// copies fail, allocations flake, and whole tiers drop off the bus.
#include <gtest/gtest.h>

#include "src/common/fault_injection.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/solution.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/mem/placement.h"
#include "src/migration/admission/admission.h"
#include "src/migration/mechanism.h"
#include "src/migration/migration_engine.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/sim/pebs.h"
#include "src/sim/tier.h"

namespace mtm {
namespace {

TEST(PressureTest, MachineNearlyFullStillPlaces) {
  // Footprint close to total capacity: placement must spill through all
  // four components without failing.
  Machine machine = Machine::OptaneFourTier(512);
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  const Bytes footprint = machine.TotalCapacity() * 9 / 10;
  u32 vma = as.Allocate(footprint, /*thp=*/true, "big");
  PlacementFaultHandler handler(machine, pt, frames, as, PlacementPolicy::kFirstTouch);
  int placed[8] = {};
  for (u64 off = 0; off < footprint.value(); off += kHugePageSize) {
    ComponentId c = handler.HandlePageFault(as.vma(vma).start + off, 0, false);
    ASSERT_NE(c, kInvalidComponent);
    ++placed[c.value()];
  }
  // Every component received pages.
  for (ComponentId c{0}; c < machine.end_component(); ++c) {
    EXPECT_GT(placed[c.value()], 0) << machine.component(c).name;
  }
  EXPECT_EQ(frames.total_used(), pt.mapped_bytes());
}

TEST(PressureTest, PlacementFailsCleanlyWhenMachineFull) {
  Machine machine = Machine::OptaneFourTier(512);
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  for (ComponentId c{0}; c < machine.end_component(); ++c) {
    ASSERT_TRUE(frames.Reserve(c, frames.free_bytes(c)).ok());
  }
  u32 vma = as.Allocate(MiB(4), false, "x");
  PlacementFaultHandler handler(machine, pt, frames, as, PlacementPolicy::kFirstTouch);
  EXPECT_EQ(handler.HandlePageFault(as.vma(vma).start, 0, false), kInvalidComponent);
}

TEST(PressureTest, MigrationWithNoRoomAnywhereRecordsFailure) {
  // Every component full: an order into a full tier whose reclaim cannot
  // cascade (all lower tiers full too) fails without corrupting state.
  Machine machine = Machine::OptaneFourTier(4096);  // tiny tiers
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  ComponentId t1 = machine.TierOrder(0)[0];
  ComponentId t3 = machine.TierOrder(0)[2];

  // Fill t1 exactly; fill every PM component so demotion has nowhere to go.
  u32 resident_vma = as.Allocate(frames.capacity(t1), false, "resident");
  ASSERT_TRUE(pt.MapRange(as.vma(resident_vma).start, frames.capacity(t1), t1, false).ok());
  ASSERT_TRUE(frames.Reserve(t1, frames.capacity(t1)).ok());
  for (ComponentId c{0}; c < machine.end_component(); ++c) {
    if (c != t1) {
      ASSERT_TRUE(frames.Reserve(c, frames.free_bytes(c)).ok());
    }
  }
  // One more region nominally on t3 (accounting-wise it is part of the
  // reserve above; map only).
  u32 hot_vma = as.Allocate(kHugePageBytes, false, "hot");
  ASSERT_TRUE(pt.MapRange(as.vma(hot_vma).start, kHugePageBytes, t3, false).ok());

  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kMovePages);
  (void)engine.Submit(MigrationOrder{as.vma(hot_vma).start, kHugePageBytes, t1, 0});
  EXPECT_GT(engine.stats().bytes_failed, Bytes{});
  // The hot pages stay where they were.
  EXPECT_EQ(pt.Find(as.vma(hot_vma).start)->component, t3);
}

TEST(PressureTest, PebsBufferOverflowDropsSamples) {
  Machine machine = Machine::OptaneFourTier(512);
  PebsEngine::Config config;
  config.sample_period = 1;
  config.buffer_capacity = 16;
  config.sample_dram = true;
  PebsEngine pebs(machine, config);
  pebs.SetEnabled(true);
  for (int i = 0; i < 100; ++i) {
    pebs.Observe(VirtAddr{0x1000} + PagesToBytes(i), ComponentId(0), 0, false);
  }
  EXPECT_EQ(pebs.pending(), 16u);
  EXPECT_EQ(pebs.samples_dropped(), 84u);
  EXPECT_EQ(pebs.Drain().size(), 16u);
  // Buffer drains and refills.
  pebs.Observe(VirtAddr{0x1000}, ComponentId(0), 0, false);
  EXPECT_EQ(pebs.pending(), 1u);
}

TEST(PressureTest, WorkloadLargerThanFastTiersRuns) {
  // The paper's setup requires footprints exceeding the two fast tiers;
  // verify end-to-end that such a run completes under every major solution.
  ExperimentConfig config;
  config.sim_scale = 2048;  // GUPS at 256 MiB vs 48+48 MiB DRAM
  config.num_intervals = 8;
  for (SolutionKind kind : {SolutionKind::kFirstTouch, SolutionKind::kTieredAutoNuma,
                            SolutionKind::kAutoTiering, SolutionKind::kMtm}) {
    RunResult r = RunExperiment("gups", kind, config);
    EXPECT_GT(r.total_accesses, 0u) << SolutionKindName(kind);
    Bytes dram;
    Machine machine = Machine::OptaneFourTier(config.sim_scale);
    for (ComponentId c{0}; c < machine.end_component(); ++c) {
      if (machine.component(c).mem_class == MemClass::kDram) {
        dram += machine.component(c).capacity_bytes;
      }
    }
    EXPECT_GT(r.footprint_bytes, dram);
  }
}

TEST(PressureTest, ZeroLengthOrderIsNoop) {
  Machine machine = Machine::OptaneFourTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kMoveMemoryRegions);
  (void)engine.Submit(MigrationOrder{VirtAddr{0x5500'0000'0000ull}, Bytes{}, ComponentId(0), 0});
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.stats().bytes_migrated, Bytes{});
}

TEST(PressureTest, RepeatedFlushIdempotent) {
  Machine machine = Machine::OptaneFourTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kMoveMemoryRegions);
  engine.Flush();
  engine.Flush();
  EXPECT_EQ(engine.stats().bytes_migrated, Bytes{});
}

TEST(PressureTest, TwoTierDemotionTargetsExist) {
  // On the two-tier machine, reclaim from DRAM must demote to PM (the only
  // slower class) and never fail while PM has room.
  Machine machine = Machine::TwoTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  ComponentId dram = machine.TierOrder(0)[0];
  ComponentId pm = machine.TierOrder(0)[1];

  u32 fill = as.Allocate(frames.capacity(dram), false, "fill");
  ASSERT_TRUE(pt.MapRange(as.vma(fill).start, frames.capacity(dram), dram, false).ok());
  ASSERT_TRUE(frames.Reserve(dram, frames.capacity(dram)).ok());
  u32 hot = as.Allocate(kHugePageBytes, false, "hot");
  ASSERT_TRUE(pt.MapRange(as.vma(hot).start, kHugePageBytes, pm, false).ok());
  ASSERT_TRUE(frames.Reserve(pm, kHugePageBytes).ok());

  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kNimble);
  (void)engine.Submit(MigrationOrder{as.vma(hot).start, kHugePageBytes, dram, 0});
  EXPECT_EQ(pt.Find(as.vma(hot).start)->component, dram);
  EXPECT_GT(engine.stats().reclaim_demotions, 0u);
}

TEST(FaultInjectorTest, EmptySpecIsInert) {
  Result<FaultInjector> inj = FaultInjector::Parse("", 42);
  ASSERT_TRUE(inj.ok());
  EXPECT_FALSE(inj->armed());
  EXPECT_FALSE(inj->ShouldFail(FaultSite::kMigrationCopy));
  EXPECT_EQ(inj->draws(FaultSite::kMigrationCopy), 0u);  // no RNG consumed
}

TEST(FaultInjectorTest, SpecParsing) {
  Result<FaultInjector> inj = FaultInjector::Parse(
      "copy_fail:p=0.25;remap_fail:p=0.5;alloc_fail:p=1;pebs_drop:p=0;"
      "tier_derate:c=2,at=2s,f=0.25;tier_offline:c=3,at=250ms", 42);
  ASSERT_TRUE(inj.ok()) << inj.status().ToString();
  EXPECT_TRUE(inj->armed());
  EXPECT_DOUBLE_EQ(inj->probability(FaultSite::kMigrationCopy), 0.25);
  EXPECT_DOUBLE_EQ(inj->probability(FaultSite::kMigrationRemap), 0.5);
  EXPECT_DOUBLE_EQ(inj->probability(FaultSite::kAllocation), 1.0);
  EXPECT_DOUBLE_EQ(inj->probability(FaultSite::kPebsDrop), 0.0);
  ASSERT_EQ(inj->schedule().size(), 2u);
  // Schedule is ordered by time: the offline at 250ms precedes the 2s derate.
  EXPECT_EQ(inj->schedule()[0].component, ComponentId(3));
  EXPECT_TRUE(inj->schedule()[0].offline);
  EXPECT_EQ(inj->schedule()[0].at_ns, Millis(250));
  EXPECT_EQ(inj->schedule()[1].component, ComponentId(2));
  EXPECT_FALSE(inj->schedule()[1].offline);
  EXPECT_DOUBLE_EQ(inj->schedule()[1].bandwidth_derate, 0.25);

  for (const char* bad : {"copy_fail", "copy_fail:p=2", "copy_fail:q=0.1", "bogus:p=0.1",
                          "tier_offline:c=1", "tier_offline:c=x,at=1s",
                          "tier_derate:c=1,at=1s", "tier_derate:c=1,at=1s,f=1.5",
                          "tier_offline:c=1,at=1parsec"}) {
    EXPECT_FALSE(FaultInjector::Parse(bad, 42).ok()) << bad;
  }
}

TEST(FaultInjectorTest, ParseDurationUnits) {
  EXPECT_EQ(*ParseDuration("1500"), Nanos(1500));
  EXPECT_EQ(*ParseDuration("1500ns"), Nanos(1500));
  EXPECT_EQ(*ParseDuration("10us"), Micros(10));
  EXPECT_EQ(*ParseDuration("250ms"), Millis(250));
  EXPECT_EQ(*ParseDuration("5s"), Seconds(5));
  EXPECT_FALSE(ParseDuration("abc").ok());
  EXPECT_FALSE(ParseDuration("-3s").ok());
}

TEST(FaultInjectorTest, SeededSequenceReplaysIdentically) {
  const std::string spec = "copy_fail:p=0.1;pebs_drop:p=0.3";
  Result<FaultInjector> a = FaultInjector::Parse(spec, 1234);
  Result<FaultInjector> b = FaultInjector::Parse(spec, 1234);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a->ShouldFail(FaultSite::kMigrationCopy), b->ShouldFail(FaultSite::kMigrationCopy));
    EXPECT_EQ(a->ShouldFail(FaultSite::kPebsDrop), b->ShouldFail(FaultSite::kPebsDrop));
  }
  EXPECT_EQ(a->total_injected(), b->total_injected());
  EXPECT_GT(a->total_injected(), 0u);
}

TEST(FaultInjectorTest, SitesHaveIndependentStreams) {
  // Enabling and drawing from one site must not change another site's
  // sequence: replay copy_fail alone vs interleaved with pebs_drop draws.
  Result<FaultInjector> alone = FaultInjector::Parse("copy_fail:p=0.2", 99);
  Result<FaultInjector> mixed = FaultInjector::Parse("copy_fail:p=0.2;pebs_drop:p=0.5", 99);
  ASSERT_TRUE(alone.ok() && mixed.ok());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(alone->ShouldFail(FaultSite::kMigrationCopy),
              mixed->ShouldFail(FaultSite::kMigrationCopy));
    mixed->ShouldFail(FaultSite::kPebsDrop);  // extra draws on another stream
  }
}

TEST(FaultInjectionTest, CopyFailureRollsBackCleanly) {
  Machine machine = Machine::OptaneFourTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  ComponentId t1 = machine.TierOrder(0)[0];
  ComponentId t3 = machine.TierOrder(0)[2];

  u32 hot = as.Allocate(kHugePageBytes, false, "hot");
  ASSERT_TRUE(pt.MapRange(as.vma(hot).start, kHugePageBytes, t3, false).ok());
  ASSERT_TRUE(frames.Reserve(t3, kHugePageBytes).ok());

  FaultInjector inj = *FaultInjector::Parse("copy_fail:p=1", 42);
  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kMovePages);
  engine.set_fault_injector(&inj);

  Status s = engine.Submit(MigrationOrder{as.vma(hot).start, kHugePageBytes, t1, 0});
  EXPECT_TRUE(IsUnavailable(s)) << s.ToString();
  // Rollback: source still mapped, nothing landed on the target, frame
  // accounting agrees with the page table, and a retry is queued.
  EXPECT_EQ(pt.Find(as.vma(hot).start)->component, t3);
  EXPECT_EQ(frames.used(t1), Bytes{});
  EXPECT_EQ(frames.total_used(), pt.mapped_bytes());
  EXPECT_TRUE(engine.VerifyInvariants().ok());
  EXPECT_EQ(engine.stats().injected_copy_failures, 1u);
  EXPECT_EQ(engine.stats().rollbacks, 1u);
  EXPECT_EQ(engine.stats().bytes_migrated, Bytes{});
  EXPECT_EQ(engine.retry_backlog(), 1u);
}

TEST(FaultInjectionTest, BackoffRetryEventuallySucceeds) {
  Machine machine = Machine::OptaneFourTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  ComponentId t1 = machine.TierOrder(0)[0];
  ComponentId t3 = machine.TierOrder(0)[2];

  u32 hot = as.Allocate(kHugePageBytes, false, "hot");
  ASSERT_TRUE(pt.MapRange(as.vma(hot).start, kHugePageBytes, t3, false).ok());
  ASSERT_TRUE(frames.Reserve(t3, kHugePageBytes).ok());

  FaultInjector inj = *FaultInjector::Parse("copy_fail:p=1", 42);
  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kMovePages);
  engine.set_fault_injector(&inj);

  EXPECT_TRUE(IsUnavailable(
      engine.Submit(MigrationOrder{as.vma(hot).start, kHugePageBytes, t1, 0})));
  ASSERT_EQ(engine.retry_backlog(), 1u);

  // The device recovers. Before the backoff deadline nothing happens;
  // after it the queued retry re-submits and commits.
  inj.set_probability(FaultSite::kMigrationCopy, 0.0);
  engine.Poll();
  EXPECT_EQ(engine.retry_backlog(), 1u) << "retried before its backoff expired";
  clock.AdvanceApp(engine.retry_policy().initial_backoff_ns + Nanos(1));
  engine.Poll();
  EXPECT_EQ(engine.retry_backlog(), 0u);
  EXPECT_EQ(engine.stats().retries, 1u);
  EXPECT_EQ(pt.Find(as.vma(hot).start)->component, t1);
  EXPECT_EQ(engine.stats().bytes_migrated, kHugePageBytes);
  EXPECT_TRUE(engine.VerifyInvariants().ok());
}

TEST(FaultInjectionTest, ThrashGuardAbandonsHotWrittenRegion) {
  // A region under a write storm: every async copy is interrupted by a
  // write fault, and the injected copy failure aborts the forced-sync
  // completion each time. The thrash guard must abandon it within one
  // interval instead of retrying forever.
  Machine machine = Machine::OptaneFourTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  ComponentId t1 = machine.TierOrder(0)[0];
  ComponentId t3 = machine.TierOrder(0)[2];

  u32 hot = as.Allocate(kHugePageBytes, false, "hot");
  ASSERT_TRUE(pt.MapRange(as.vma(hot).start, kHugePageBytes, t3, false).ok());
  ASSERT_TRUE(frames.Reserve(t3, kHugePageBytes).ok());

  FaultInjector inj = *FaultInjector::Parse("copy_fail:p=1", 42);
  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kMoveMemoryRegions);
  engine.set_fault_injector(&inj);
  MigrationRetryPolicy rp;
  rp.initial_backoff_ns = SimNanos{};  // retry as soon as Poll sees the queue
  engine.set_retry_policy(rp);
  engine.BeginInterval();

  const VirtAddr addr = as.vma(hot).start;
  EXPECT_TRUE(engine.Submit(MigrationOrder{addr, kHugePageBytes, t1, 0}).ok());
  for (int round = 0; round < 5; ++round) {
    if (engine.pending() > 0) {
      engine.OnWriteTrackFault(addr, 0);  // the write storm strikes again
    }
    engine.Poll();
  }
  EXPECT_EQ(engine.stats().thrash_aborts, 1u);
  EXPECT_EQ(engine.stats().orders_abandoned, 1u);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.retry_backlog(), 0u);
  // The region survived in place through every abort.
  EXPECT_EQ(pt.Find(addr)->component, t3);
  EXPECT_TRUE(engine.VerifyInvariants().ok());

  // A new interval opens a fresh thrash window: the region is eligible again.
  engine.BeginInterval();
  inj.set_probability(FaultSite::kMigrationCopy, 0.0);
  EXPECT_TRUE(engine.Submit(MigrationOrder{addr, kHugePageBytes, t1, 0}).ok());
  engine.Flush();
  EXPECT_EQ(pt.Find(addr)->component, t1);
}

TEST(FaultInjectionTest, OfflineTierDrainRelocatesEveryResident) {
  Machine machine = Machine::OptaneFourTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  ComponentId pm0 = machine.TierOrder(0)[2];

  const Bytes bytes = 16 * kHugePageBytes;
  u32 data = as.Allocate(bytes, /*thp=*/true, "data");
  ASSERT_TRUE(pt.MapRange(as.vma(data).start, bytes, pm0, true).ok());
  ASSERT_TRUE(frames.Reserve(pm0, bytes).ok());

  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kMoveMemoryRegions);
  machine.SetOffline(pm0, true);
  TierFaultEvent event;
  event.component = pm0;
  event.offline = true;
  engine.OnTierFault(event);

  // Every page left the dead component, and accounting stayed consistent.
  EXPECT_EQ(frames.used(pm0), Bytes{});
  EXPECT_EQ(engine.stats().tier_drains, 1u);
  EXPECT_EQ(engine.stats().drained_bytes, bytes);
  EXPECT_EQ(engine.stats().drain_failed_bytes, Bytes{});
  pt.ForEachMapping(as.vma(data).start, bytes, [&](VirtAddr, Bytes, const Pte& pte) {
    EXPECT_NE(pte.component, pm0);
  });
  EXPECT_EQ(frames.total_used(), pt.mapped_bytes());
  EXPECT_TRUE(engine.VerifyInvariants().ok());

  // And the dead tier accepts no new orders.
  Status s = engine.Submit(MigrationOrder{as.vma(data).start, kHugePageBytes, pm0, 0});
  EXPECT_TRUE(IsUnavailable(s));
}

TEST(FaultInjectionTest, OfflineEventRollsBackInFlightOrders) {
  Machine machine = Machine::OptaneFourTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  ComponentId t1 = machine.TierOrder(0)[0];
  ComponentId pm0 = machine.TierOrder(0)[2];

  u32 hot = as.Allocate(kHugePageBytes, false, "hot");
  ASSERT_TRUE(pt.MapRange(as.vma(hot).start, kHugePageBytes, t1, false).ok());
  ASSERT_TRUE(frames.Reserve(t1, kHugePageBytes).ok());

  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kMoveMemoryRegions);
  // Async demotion toward PM0 is in flight when PM0 dies.
  EXPECT_TRUE(engine.Submit(MigrationOrder{as.vma(hot).start, kHugePageBytes, pm0, 0}).ok());
  ASSERT_EQ(engine.pending(), 1u);

  machine.SetOffline(pm0, true);
  TierFaultEvent event;
  event.component = pm0;
  event.offline = true;
  engine.OnTierFault(event);

  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.stats().rollbacks, 1u);
  EXPECT_EQ(engine.stats().orders_abandoned, 1u);
  EXPECT_EQ(pt.Find(as.vma(hot).start)->component, t1);
  // Write tracking was disarmed by the rollback.
  EXPECT_FALSE(pt.Find(as.vma(hot).start)->write_tracked());
  EXPECT_TRUE(engine.VerifyInvariants().ok());
}

TEST(FaultInjectionTest, ChaosRunStaysConsistentEndToEnd) {
  // The PR's acceptance scenario: a seeded schedule with >=1% copy-failure
  // probability plus a mid-run tier-offline must complete with zero
  // invariant violations and everything drained off the dead tier.
  ExperimentConfig config;
  config.num_intervals = 12;
  config.target_accesses = 0;  // run all intervals
  config.fault_spec =
      "copy_fail:p=0.05;alloc_fail:p=0.02;pebs_drop:p=0.05;tier_offline:c=2,at=100ms";
  RunResult r = RunExperiment("gups", SolutionKind::kMtm, config);
  EXPECT_TRUE(r.faults.active);
  EXPECT_EQ(r.faults.invariant_violations, 0u) << r.faults.first_violation;
  EXPECT_EQ(r.faults.tier_events, 1u);
  EXPECT_EQ(r.migration_stats.tier_drains, 1u);
  EXPECT_GT(r.migration_stats.drained_bytes, Bytes{});
  // The injected faults actually exercised the rollback/retry machinery.
  EXPECT_GT(r.faults.copy_failures + r.faults.alloc_failures, 0u);
  EXPECT_GT(r.migration_stats.rollbacks + r.migration_stats.retries, 0u);
}

TEST(FaultInjectionTest, ChaosRunReplaysIdentically) {
  ExperimentConfig config;
  config.num_intervals = 6;
  config.fault_spec = "copy_fail:p=0.05;alloc_fail:p=0.02;tier_offline:c=2,at=60ms";
  RunResult a = RunExperiment("gups", SolutionKind::kMtm, config);
  RunResult b = RunExperiment("gups", SolutionKind::kMtm, config);
  EXPECT_EQ(a.total_accesses, b.total_accesses);
  EXPECT_EQ(a.total_ns(), b.total_ns());
  EXPECT_EQ(a.migration_stats.bytes_migrated, b.migration_stats.bytes_migrated);
  EXPECT_EQ(a.migration_stats.rollbacks, b.migration_stats.rollbacks);
  EXPECT_EQ(a.migration_stats.retries, b.migration_stats.retries);
  EXPECT_EQ(a.faults.copy_failures, b.faults.copy_failures);
  EXPECT_EQ(a.faults.alloc_failures, b.faults.alloc_failures);
  EXPECT_EQ(a.migration_stats.drained_bytes, b.migration_stats.drained_bytes);
}

TEST(FaultInjectionTest, EmptySpecMatchesFaultFreeRun) {
  // A config with no fault_spec and one with an all-zero injector must
  // produce identical runs — the wiring itself may not perturb anything.
  ExperimentConfig plain;
  plain.num_intervals = 4;
  RunResult a = RunExperiment("gups", SolutionKind::kMtm, plain);
  ExperimentConfig with_spec = plain;
  with_spec.fault_spec = "copy_fail:p=0";  // parses but never fires
  RunResult b = RunExperiment("gups", SolutionKind::kMtm, with_spec);
  EXPECT_EQ(a.total_accesses, b.total_accesses);
  EXPECT_EQ(a.total_ns(), b.total_ns());
  EXPECT_EQ(a.migration_stats.bytes_migrated, b.migration_stats.bytes_migrated);
  EXPECT_EQ(a.migration_stats.sync_fallbacks, b.migration_stats.sync_fallbacks);
}

}  // namespace
}  // namespace mtm
