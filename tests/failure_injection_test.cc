// Failure-injection and pressure tests: what happens when tiers run out of
// space, PEBS buffers overflow, migrations have nowhere to go, or the
// address space outgrows the machine.
#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/mem/placement.h"
#include "src/migration/migration_engine.h"
#include "src/workloads/workload_factory.h"

namespace mtm {
namespace {

TEST(PressureTest, MachineNearlyFullStillPlaces) {
  // Footprint close to total capacity: placement must spill through all
  // four components without failing.
  Machine machine = Machine::OptaneFourTier(512);
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  u64 footprint = machine.TotalCapacity() * 9 / 10;
  u32 vma = as.Allocate(footprint, /*thp=*/true, "big");
  PlacementFaultHandler handler(machine, pt, frames, as, PlacementPolicy::kFirstTouch);
  int placed[8] = {};
  for (u64 off = 0; off < footprint; off += kHugePageSize) {
    ComponentId c = handler.HandlePageFault(as.vma(vma).start + off, 0, false);
    ASSERT_NE(c, kInvalidComponent);
    ++placed[c];
  }
  // Every component received pages.
  for (u32 c = 0; c < machine.num_components(); ++c) {
    EXPECT_GT(placed[c], 0) << machine.component(c).name;
  }
  EXPECT_EQ(frames.total_used(), pt.mapped_bytes());
}

TEST(PressureTest, PlacementFailsCleanlyWhenMachineFull) {
  Machine machine = Machine::OptaneFourTier(512);
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  for (u32 c = 0; c < machine.num_components(); ++c) {
    ASSERT_TRUE(frames.Reserve(c, frames.free_bytes(c)));
  }
  u32 vma = as.Allocate(MiB(4), false, "x");
  PlacementFaultHandler handler(machine, pt, frames, as, PlacementPolicy::kFirstTouch);
  EXPECT_EQ(handler.HandlePageFault(as.vma(vma).start, 0, false), kInvalidComponent);
}

TEST(PressureTest, MigrationWithNoRoomAnywhereRecordsFailure) {
  // Every component full: an order into a full tier whose reclaim cannot
  // cascade (all lower tiers full too) fails without corrupting state.
  Machine machine = Machine::OptaneFourTier(4096);  // tiny tiers
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  ComponentId t1 = machine.TierOrder(0)[0];
  ComponentId t3 = machine.TierOrder(0)[2];

  // Fill t1 exactly; fill every PM component so demotion has nowhere to go.
  u32 resident_vma = as.Allocate(frames.capacity(t1), false, "resident");
  ASSERT_TRUE(pt.MapRange(as.vma(resident_vma).start, frames.capacity(t1), t1, false).ok());
  ASSERT_TRUE(frames.Reserve(t1, frames.capacity(t1)));
  for (u32 c = 0; c < machine.num_components(); ++c) {
    if (c != t1) {
      ASSERT_TRUE(frames.Reserve(c, frames.free_bytes(c)));
    }
  }
  // One more region nominally on t3 (accounting-wise it is part of the
  // reserve above; map only).
  u32 hot_vma = as.Allocate(kHugePageSize, false, "hot");
  ASSERT_TRUE(pt.MapRange(as.vma(hot_vma).start, kHugePageSize, t3, false).ok());

  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kMovePages);
  engine.Submit(MigrationOrder{as.vma(hot_vma).start, kHugePageSize, t1, 0});
  EXPECT_GT(engine.stats().bytes_failed, 0u);
  // The hot pages stay where they were.
  EXPECT_EQ(pt.Find(as.vma(hot_vma).start)->component, t3);
}

TEST(PressureTest, PebsBufferOverflowDropsSamples) {
  Machine machine = Machine::OptaneFourTier(512);
  PebsEngine::Config config;
  config.sample_period = 1;
  config.buffer_capacity = 16;
  config.sample_dram = true;
  PebsEngine pebs(machine, config);
  pebs.SetEnabled(true);
  for (int i = 0; i < 100; ++i) {
    pebs.Observe(0x1000 + static_cast<u64>(i) * kPageSize, 0, 0, false);
  }
  EXPECT_EQ(pebs.pending(), 16u);
  EXPECT_EQ(pebs.samples_dropped(), 84u);
  EXPECT_EQ(pebs.Drain().size(), 16u);
  // Buffer drains and refills.
  pebs.Observe(0x1000, 0, 0, false);
  EXPECT_EQ(pebs.pending(), 1u);
}

TEST(PressureTest, WorkloadLargerThanFastTiersRuns) {
  // The paper's setup requires footprints exceeding the two fast tiers;
  // verify end-to-end that such a run completes under every major solution.
  ExperimentConfig config;
  config.sim_scale = 2048;  // GUPS at 256 MiB vs 48+48 MiB DRAM
  config.num_intervals = 8;
  for (SolutionKind kind : {SolutionKind::kFirstTouch, SolutionKind::kTieredAutoNuma,
                            SolutionKind::kAutoTiering, SolutionKind::kMtm}) {
    RunResult r = RunExperiment("gups", kind, config);
    EXPECT_GT(r.total_accesses, 0u) << SolutionKindName(kind);
    u64 dram = 0;
    Machine machine = Machine::OptaneFourTier(config.sim_scale);
    for (u32 c = 0; c < machine.num_components(); ++c) {
      if (machine.component(c).mem_class == MemClass::kDram) {
        dram += machine.component(c).capacity_bytes;
      }
    }
    EXPECT_GT(r.footprint_bytes, dram);
  }
}

TEST(PressureTest, ZeroLengthOrderIsNoop) {
  Machine machine = Machine::OptaneFourTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kMoveMemoryRegions);
  engine.Submit(MigrationOrder{0x5500'0000'0000ull, 0, 0, 0});
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.stats().bytes_migrated, 0u);
}

TEST(PressureTest, RepeatedFlushIdempotent) {
  Machine machine = Machine::OptaneFourTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kMoveMemoryRegions);
  engine.Flush();
  engine.Flush();
  EXPECT_EQ(engine.stats().bytes_migrated, 0u);
}

TEST(PressureTest, TwoTierDemotionTargetsExist) {
  // On the two-tier machine, reclaim from DRAM must demote to PM (the only
  // slower class) and never fail while PM has room.
  Machine machine = Machine::TwoTier(512);
  SimClock clock;
  PageTable pt;
  AddressSpace as;
  FrameAllocator frames(machine);
  MemCounters counters(machine.num_components());
  ComponentId dram = machine.TierOrder(0)[0];
  ComponentId pm = machine.TierOrder(0)[1];

  u32 fill = as.Allocate(frames.capacity(dram), false, "fill");
  ASSERT_TRUE(pt.MapRange(as.vma(fill).start, frames.capacity(dram), dram, false).ok());
  ASSERT_TRUE(frames.Reserve(dram, frames.capacity(dram)));
  u32 hot = as.Allocate(kHugePageSize, false, "hot");
  ASSERT_TRUE(pt.MapRange(as.vma(hot).start, kHugePageSize, pm, false).ok());
  ASSERT_TRUE(frames.Reserve(pm, kHugePageSize));

  MigrationEngine engine(machine, pt, frames, as, counters, clock,
                         MechanismKind::kNimble);
  engine.Submit(MigrationOrder{as.vma(hot).start, kHugePageSize, dram, 0});
  EXPECT_EQ(pt.Find(as.vma(hot).start)->component, dram);
  EXPECT_GT(engine.stats().reclaim_demotions, 0u);
}

}  // namespace
}  // namespace mtm
