// Tests for the migration admission-control stage: the per-region history
// bookkeeping, the three shipped controllers' verdict matrices, the engine
// integration (gating, budget, history recording), the vanilla-controller
// byte-identity guarantee against the seed goldens, and the ppt-vs-vanilla
// thrash regression on the adversarial ping-pong workload.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/core/solution.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/migration/admission/admission.h"
#include "src/migration/mechanism.h"
#include "src/migration/migration_engine.h"
#include "src/obs/obs.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/workloads/pingpong.h"
#include "src/workloads/workload_factory.h"

namespace mtm {
namespace {

AdmissionTuning TestTuning() {
  AdmissionTuning tuning;
  tuning.flip_window_ns = Millis(10);
  tuning.ppt_base_cooldown_ns = Millis(1);
  tuning.ppt_max_cooldown_ns = Millis(32);
  tuning.interval_budget_bytes = MiB(8);
  return tuning;
}

AdmissionRequest Promote(VirtAddr start, Bytes bytes, SimNanos now, double hotness = 0.0) {
  AdmissionRequest r;
  r.order = MigrationOrder{start, bytes, ComponentId(0), 0, hotness};
  r.bytes = bytes;
  r.is_promotion = true;
  r.now = now;
  return r;
}

AdmissionRequest Demote(VirtAddr start, Bytes bytes, SimNanos now) {
  AdmissionRequest r = Promote(start, bytes, now);
  r.is_promotion = false;
  return r;
}

// ------------------------------------------------------------- history --

TEST(MigrationHistoryTest, CountsGenerationsAndTimestamps) {
  MigrationHistory history(TestTuning());
  const VirtAddr addr(kHugePageSize * 10);
  history.RecordMove(addr, /*is_promotion=*/true, MiB(2), Nanos(100));
  history.RecordMove(addr, /*is_promotion=*/true, MiB(2), Nanos(200));
  history.RecordMove(addr, /*is_promotion=*/false, MiB(2), Millis(20));
  const RegionMigrationHistory* e = history.Find(addr);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->promotions, 2u);
  EXPECT_EQ(e->demotions, 1u);
  EXPECT_EQ(e->last_promote_at, Nanos(200));
  EXPECT_EQ(e->last_demote_at, Millis(20));
  EXPECT_EQ(e->last_direction, -1);
  EXPECT_EQ(history.size(), 1u);
}

TEST(MigrationHistoryTest, KeysByHugeAlignedRegion) {
  MigrationHistory history(TestTuning());
  const VirtAddr base(kHugePageSize * 4);
  history.RecordMove(base, true, MiB(2), Nanos(1));
  // A different page of the same 2 MiB region lands in the same entry.
  history.RecordMove(base + kPageBytes * 3, true, MiB(2), Nanos(2));
  EXPECT_EQ(history.size(), 1u);
  EXPECT_EQ(history.Find(base)->promotions, 2u);
  EXPECT_EQ(history.Find(base + kPageBytes), history.Find(base));
}

TEST(MigrationHistoryTest, FlipRequiresReversalInsideWindow) {
  MigrationHistory history(TestTuning());  // flip window 10 ms
  const VirtAddr a(kHugePageSize);
  const VirtAddr b(kHugePageSize * 2);
  // Promote then demote 1 ms later: a flip.
  history.RecordMove(a, true, MiB(2), Millis(1));
  EXPECT_TRUE(history.RecordMove(a, false, MiB(2), Millis(2)).flipped);
  // Same-direction repeat is never a flip.
  EXPECT_FALSE(history.RecordMove(a, false, MiB(2), Millis(3)).flipped);
  // Reversal outside the window is churn, not ping-pong.
  history.RecordMove(b, true, MiB(2), Millis(1));
  EXPECT_FALSE(history.RecordMove(b, false, MiB(2), Millis(50)).flipped);
  EXPECT_EQ(history.Find(a)->flips, 1u);
  EXPECT_EQ(history.Find(b)->flips, 0u);
}

TEST(MigrationHistoryTest, PingPongScoreAccumulatesAndDecays) {
  MigrationHistory history(TestTuning());  // score_decay 0.5
  const VirtAddr a(kHugePageSize);
  history.RecordMove(a, true, MiB(2), Millis(1));
  history.RecordMove(a, false, MiB(2), Millis(2));  // flip 1
  history.RecordMove(a, true, MiB(2), Millis(3));   // flip 2
  EXPECT_DOUBLE_EQ(history.Find(a)->pingpong_score, 2.0);
  EXPECT_DOUBLE_EQ(history.MaxPingPongScore(), 2.0);
  history.EndInterval();
  EXPECT_DOUBLE_EQ(history.Find(a)->pingpong_score, 1.0);
  history.EndInterval();
  EXPECT_DOUBLE_EQ(history.MaxPingPongScore(), 0.5);
}

TEST(MigrationHistoryTest, FindUnknownRegionReturnsNull) {
  MigrationHistory history(TestTuning());
  EXPECT_EQ(history.Find(VirtAddr(kHugePageSize)), nullptr);
  EXPECT_DOUBLE_EQ(history.MaxPingPongScore(), 0.0);
}

// --------------------------------------------------------- controllers --

TEST(AdmissionKindTest, NamesRoundTrip) {
  for (AdmissionKind kind :
       {AdmissionKind::kVanilla, AdmissionKind::kPpt, AdmissionKind::kBandwidth}) {
    AdmissionKind parsed;
    ASSERT_TRUE(AdmissionKindFromName(AdmissionKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
    auto controller = MakeAdmissionController(kind, TestTuning());
    EXPECT_EQ(controller->kind(), kind);
    EXPECT_EQ(controller->name(), AdmissionKindName(kind));
  }
  AdmissionKind parsed = AdmissionKind::kPpt;
  EXPECT_FALSE(AdmissionKindFromName("bogus", &parsed));
  EXPECT_EQ(parsed, AdmissionKind::kPpt);  // untouched on failure
}

TEST(VanillaAdmissionTest, AdmitsEverything) {
  auto vanilla = MakeAdmissionController(AdmissionKind::kVanilla, TestTuning());
  MigrationHistory history(TestTuning());
  const VirtAddr a(kHugePageSize);
  // Even a region mid-cooldown, over an exhausted budget.
  history.RecordMove(a, true, MiB(2), Millis(1));
  history.RecordMove(a, false, MiB(2), Millis(2));
  AdmissionBudget budget{MiB(1), MiB(1)};
  EXPECT_EQ(vanilla->Admit(Promote(a, MiB(2), Millis(2)), history, budget),
            AdmissionVerdict::kAdmit);
  EXPECT_EQ(vanilla->Admit(Demote(a, MiB(2), Millis(2)), history, budget),
            AdmissionVerdict::kAdmit);
}

TEST(PptAdmissionTest, VerdictMatrix) {
  auto ppt = MakeAdmissionController(AdmissionKind::kPpt, TestTuning());
  MigrationHistory history(TestTuning());  // base cooldown 1 ms
  AdmissionBudget budget;
  const VirtAddr a(kHugePageSize);
  const VirtAddr b(kHugePageSize * 2);
  // Never-migrated region: admit.
  EXPECT_EQ(ppt->Admit(Promote(a, MiB(2), Millis(1)), history, budget),
            AdmissionVerdict::kAdmit);
  // Promoted but never demoted: re-promotion has no cooldown to respect.
  history.RecordMove(a, true, MiB(2), Millis(1));
  EXPECT_EQ(ppt->Admit(Promote(a, MiB(2), Millis(1)), history, budget),
            AdmissionVerdict::kAdmit);
  // b demoted at 2 ms with no flips: cooldown is the 1 ms base.
  history.RecordMove(b, false, MiB(2), Millis(2));
  ASSERT_EQ(history.Find(b)->flips, 0u);
  EXPECT_EQ(ppt->Admit(Promote(b, MiB(2), Millis(2) + Nanos(1)), history, budget),
            AdmissionVerdict::kDefer);
  EXPECT_EQ(ppt->Admit(Promote(b, MiB(2), Millis(3)), history, budget),
            AdmissionVerdict::kAdmit);
  // a's demotion at 2 ms reverses its 1 ms promotion — one flip, so the
  // cooldown doubles: deferred at 3 ms, admitted at 4 ms.
  history.RecordMove(a, false, MiB(2), Millis(2));
  ASSERT_EQ(history.Find(a)->flips, 1u);
  EXPECT_EQ(ppt->Admit(Promote(a, MiB(2), Millis(3)), history, budget),
            AdmissionVerdict::kDefer);
  EXPECT_EQ(ppt->Admit(Promote(a, MiB(2), Millis(4)), history, budget),
            AdmissionVerdict::kAdmit);
  // Demotions are never throttled (blocking them would overflow the tier).
  EXPECT_EQ(ppt->Admit(Demote(a, MiB(2), Millis(2) + Nanos(1)), history, budget),
            AdmissionVerdict::kAdmit);
}

TEST(PptAdmissionTest, CooldownGrowsExponentiallyWithFlips) {
  AdmissionTuning tuning = TestTuning();  // base 1 ms, max 32 ms, window 10 ms
  auto ppt = MakeAdmissionController(AdmissionKind::kPpt, tuning);
  MigrationHistory history(tuning);
  AdmissionBudget budget;
  const VirtAddr a(kHugePageSize);
  // Three flips: demote(f1), promote(f2), demote(f3), last demote at 4 ms.
  history.RecordMove(a, true, MiB(2), Millis(1));
  history.RecordMove(a, false, MiB(2), Millis(2));
  history.RecordMove(a, true, MiB(2), Millis(3));
  history.RecordMove(a, false, MiB(2), Millis(4));
  EXPECT_EQ(history.Find(a)->flips, 3u);
  // Cooldown is now 1 ms << 3 = 8 ms from the 4 ms demotion.
  EXPECT_EQ(ppt->Admit(Promote(a, MiB(2), Millis(11)), history, budget),
            AdmissionVerdict::kDefer);
  EXPECT_EQ(ppt->Admit(Promote(a, MiB(2), Millis(12)), history, budget),
            AdmissionVerdict::kAdmit);
}

TEST(PptAdmissionTest, CooldownSaturatesAtMax) {
  AdmissionTuning tuning = TestTuning();
  tuning.ppt_flip_shift_cap = 40;  // force the overflow guard, not the cap
  auto ppt = MakeAdmissionController(AdmissionKind::kPpt, tuning);
  MigrationHistory history(tuning);
  AdmissionBudget budget;
  const VirtAddr a(kHugePageSize);
  history.RecordMove(a, true, MiB(2), Millis(1));
  // Rack up a flip count whose shifted cooldown overflows the 32 ms max.
  for (int i = 0; i < 20; ++i) {
    history.RecordMove(a, i % 2 == 0, MiB(2), Millis(1) + Nanos(i));
  }
  ASSERT_GE(history.Find(a)->flips, 19u);
  // 1 ms << 19 overflows the 32 ms max; the cooldown saturates there.
  const SimNanos demoted_at = history.Find(a)->last_demote_at;
  EXPECT_EQ(ppt->Admit(Promote(a, MiB(2), demoted_at + Millis(31)), history, budget),
            AdmissionVerdict::kDefer);
  EXPECT_EQ(ppt->Admit(Promote(a, MiB(2), demoted_at + Millis(33)), history, budget),
            AdmissionVerdict::kAdmit);
}

TEST(BandwidthAdmissionTest, RejectsPromotionsOverBudget) {
  auto bw = MakeAdmissionController(AdmissionKind::kBandwidth, TestTuning());
  MigrationHistory history(TestTuning());
  const VirtAddr a(kHugePageSize);
  AdmissionBudget budget{MiB(8), Bytes{}};
  EXPECT_EQ(bw->Admit(Promote(a, MiB(8), Nanos(1)), history, budget),
            AdmissionVerdict::kAdmit);
  budget.admitted_bytes = MiB(6);
  EXPECT_EQ(bw->Admit(Promote(a, MiB(2), Nanos(1)), history, budget),
            AdmissionVerdict::kAdmit);  // exactly fits
  EXPECT_EQ(bw->Admit(Promote(a, MiB(2) + kPageBytes, Nanos(1)), history, budget),
            AdmissionVerdict::kReject);
  budget.admitted_bytes = MiB(8);
  EXPECT_EQ(bw->Admit(Promote(a, kPageBytes, Nanos(1)), history, budget),
            AdmissionVerdict::kReject);
  // Demotions are pressure relief and never charged or rejected.
  EXPECT_EQ(bw->Admit(Demote(a, MiB(64), Nanos(1)), history, budget),
            AdmissionVerdict::kAdmit);
  // A zero limit means unlimited.
  AdmissionBudget unlimited;
  EXPECT_EQ(bw->Admit(Promote(a, GiB(1), Nanos(1)), history, unlimited),
            AdmissionVerdict::kAdmit);
}

TEST(BandwidthAdmissionTest, SequencesDemotionsFirstThenHottest) {
  auto bw = MakeAdmissionController(AdmissionKind::kBandwidth, TestTuning());
  std::vector<AdmissionRequest> batch;
  batch.push_back(Promote(VirtAddr(kHugePageSize * 1), MiB(2), Nanos(1), /*hotness=*/1.0));
  batch.push_back(Demote(VirtAddr(kHugePageSize * 2), MiB(2), Nanos(1)));
  batch.push_back(Promote(VirtAddr(kHugePageSize * 3), MiB(2), Nanos(1), /*hotness=*/9.0));
  batch.push_back(Demote(VirtAddr(kHugePageSize * 4), MiB(2), Nanos(1)));
  batch.push_back(Promote(VirtAddr(kHugePageSize * 5), MiB(2), Nanos(1), /*hotness=*/9.0));
  bw->Sequence(batch);
  // Demotions first, in policy order; then promotions by descending hotness,
  // ties kept stable.
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch[0].order.start, VirtAddr(kHugePageSize * 2));
  EXPECT_EQ(batch[1].order.start, VirtAddr(kHugePageSize * 4));
  EXPECT_EQ(batch[2].order.start, VirtAddr(kHugePageSize * 3));
  EXPECT_EQ(batch[3].order.start, VirtAddr(kHugePageSize * 5));
  EXPECT_EQ(batch[4].order.start, VirtAddr(kHugePageSize * 1));
}

TEST(BandwidthAdmissionTest, SplitsPromotionsAtTheBudgetBoundary) {
  auto bw = MakeAdmissionController(AdmissionKind::kBandwidth, TestTuning());
  MigrationHistory history(TestTuning());
  const VirtAddr a(kHugePageSize);
  AdmissionBudget budget{MiB(8), MiB(3)};  // MiB(5) remaining
  // Fits: whole-order admit, no split boundary.
  AdmissionDecision whole = bw->DecideOrder(Promote(a, MiB(4), Nanos(1)), history, budget);
  EXPECT_EQ(whole.verdict, AdmissionVerdict::kAdmit);
  EXPECT_TRUE(whole.admit_bytes.IsZero());
  // Over budget: admit the huge-aligned prefix of what remains.
  AdmissionDecision split = bw->DecideOrder(Promote(a, MiB(6), Nanos(1)), history, budget);
  EXPECT_EQ(split.verdict, AdmissionVerdict::kAdmit);
  EXPECT_EQ(split.admit_bytes, MiB(4));
  // Less than one huge page left: nothing worth splitting.
  budget.admitted_bytes = MiB(8) - kPageBytes;
  AdmissionDecision reject = bw->DecideOrder(Promote(a, MiB(2), Nanos(1)), history, budget);
  EXPECT_EQ(reject.verdict, AdmissionVerdict::kReject);
  // Demotions bypass the budget and never split.
  budget.admitted_bytes = MiB(8);
  AdmissionDecision demote = bw->DecideOrder(Demote(a, MiB(64), Nanos(1)), history, budget);
  EXPECT_EQ(demote.verdict, AdmissionVerdict::kAdmit);
  EXPECT_TRUE(demote.admit_bytes.IsZero());
}

TEST(PptAdmissionTest, DecideOrderNeverSplits) {
  // Whole-order controllers inherit the default DecideOrder: the verdict
  // matches Admit and the split boundary stays unset.
  auto ppt = MakeAdmissionController(AdmissionKind::kPpt, TestTuning());
  MigrationHistory history(TestTuning());
  AdmissionBudget budget{Bytes{}, Bytes{}};
  AdmissionDecision d =
      ppt->DecideOrder(Promote(VirtAddr(kHugePageSize), GiB(1), Nanos(1)), history, budget);
  EXPECT_EQ(d.verdict, AdmissionVerdict::kAdmit);
  EXPECT_TRUE(d.admit_bytes.IsZero());
}

// --------------------------------------------------- engine integration --

class AdmissionEngineTest : public ::testing::Test {
 protected:
  AdmissionEngineTest()
      : machine_(Machine::OptaneFourTier(512)),
        frames_(machine_),
        counters_(machine_.num_components()),
        engine_(machine_, page_table_, frames_, address_space_, counters_, clock_,
                MechanismKind::kMovePages),
        t1_(machine_.TierOrder(0)[0]),
        t3_(machine_.TierOrder(0)[2]) {}

  VirtAddr BuildMapped(Bytes bytes, ComponentId component) {
    u32 vma = address_space_.Allocate(bytes, false, "w");
    VirtAddr start = address_space_.vma(vma).start;
    EXPECT_TRUE(page_table_.MapRange(start, address_space_.vma(vma).len, component, false).ok());
    EXPECT_TRUE(frames_.Reserve(component, address_space_.vma(vma).len).ok());
    return start;
  }

  ComponentId ComponentAt(VirtAddr addr) { return page_table_.Find(addr)->component; }

  Machine machine_;
  SimClock clock_;
  PageTable page_table_;
  AddressSpace address_space_;
  FrameAllocator frames_;
  MemCounters counters_;
  MigrationEngine engine_;
  ComponentId t1_, t3_;
};

TEST_F(AdmissionEngineTest, EngineRecordsHistoryEvenWithoutController) {
  // Null controller: admit everything, record history only (the engine's
  // default history has a zero flip window, so tuning must be installed).
  engine_.set_admission(nullptr, TestTuning());
  VirtAddr start = BuildMapped(MiB(4), t3_);
  EXPECT_TRUE(engine_.Submit(MigrationOrder{start, MiB(2), t1_, 0}).ok());
  const RegionMigrationHistory* e = engine_.history().Find(start);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->promotions, 1u);
  EXPECT_EQ(e->last_direction, 1);
  EXPECT_TRUE(engine_.Submit(MigrationOrder{start, MiB(2), t3_, 0}).ok());
  EXPECT_EQ(engine_.history().Find(start)->demotions, 1u);
  // No controller: nothing counted against the admission stage.
  EXPECT_EQ(engine_.admission_stats().admitted, 0u);
  EXPECT_EQ(engine_.admission_stats().flip_moves, 1u);  // flip bookkeeping still on
}

TEST_F(AdmissionEngineTest, PptDefersRePromotionInsideCooldown) {
  AdmissionTuning tuning = TestTuning();
  auto ppt = MakeAdmissionController(AdmissionKind::kPpt, tuning);
  engine_.set_admission(ppt.get(), tuning);
  VirtAddr start = BuildMapped(MiB(4), t3_);
  EXPECT_TRUE(engine_.Submit(MigrationOrder{start, MiB(2), t1_, 0}).ok());
  EXPECT_TRUE(engine_.Submit(MigrationOrder{start, MiB(2), t3_, 0}).ok());
  // Re-promotion lands inside the 1 ms base cooldown: deferred, not moved.
  Status deferred = engine_.Submit(MigrationOrder{start, MiB(2), t1_, 0});
  EXPECT_EQ(deferred.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ComponentAt(start), t3_);
  EXPECT_EQ(engine_.admission_stats().deferred, 1u);
  EXPECT_EQ(engine_.admission_stats().deferred_bytes, MiB(2));
  // Past the cooldown the same order is admitted.
  clock_.AdvanceApp(Millis(2));
  EXPECT_TRUE(engine_.Submit(MigrationOrder{start, MiB(2), t1_, 0}).ok());
  EXPECT_EQ(ComponentAt(start), t1_);
}

TEST_F(AdmissionEngineTest, BandwidthBudgetNeverExceededAndResets) {
  AdmissionTuning tuning = TestTuning();
  tuning.interval_budget_bytes = MiB(4);
  auto bw = MakeAdmissionController(AdmissionKind::kBandwidth, tuning);
  engine_.set_admission(bw.get(), tuning);
  VirtAddr start = BuildMapped(MiB(16), t3_);
  u64 rejected = 0;
  for (u32 i = 0; i < 8; ++i) {
    Status s = engine_.Submit(MigrationOrder{start + MiB(2) * i, MiB(2), t1_, 0});
    rejected += s.code() == StatusCode::kResourceExhausted;
    EXPECT_LE(engine_.admission_budget().admitted_bytes, MiB(4));
  }
  EXPECT_EQ(engine_.admission_stats().admitted_bytes, MiB(4));
  EXPECT_EQ(rejected, 6u);
  EXPECT_EQ(engine_.stats().bytes_migrated, MiB(4));
  // The interval boundary re-opens the budget.
  engine_.BeginInterval();
  EXPECT_EQ(engine_.admission_budget().admitted_bytes, Bytes{});
  EXPECT_TRUE(engine_.Submit(MigrationOrder{start + MiB(8), MiB(2), t1_, 0}).ok());
}

TEST_F(AdmissionEngineTest, DemotionsBypassTheBandwidthBudget) {
  AdmissionTuning tuning = TestTuning();
  tuning.interval_budget_bytes = MiB(2);
  auto bw = MakeAdmissionController(AdmissionKind::kBandwidth, tuning);
  engine_.set_admission(bw.get(), tuning);
  VirtAddr hot = BuildMapped(MiB(2), t3_);
  VirtAddr cold = BuildMapped(MiB(8), t1_);
  EXPECT_TRUE(engine_.Submit(MigrationOrder{hot, MiB(2), t1_, 0}).ok());  // budget spent
  EXPECT_TRUE(engine_.Submit(MigrationOrder{cold, MiB(8), t3_, 0}).ok());
  EXPECT_EQ(engine_.admission_budget().admitted_bytes, MiB(2));  // demotion uncharged
}

TEST_F(AdmissionEngineTest, PartialAdmissionSplitsAtTheBudgetBoundary) {
  AdmissionTuning tuning = TestTuning();
  tuning.interval_budget_bytes = MiB(4);
  auto bw = MakeAdmissionController(AdmissionKind::kBandwidth, tuning);
  engine_.set_admission(bw.get(), tuning);
  VirtAddr start = BuildMapped(MiB(8), t3_);
  // One order twice the budget: the prefix moves, the remainder sheds.
  EXPECT_TRUE(engine_.Submit(MigrationOrder{start, MiB(8), t1_, 0}).ok());
  EXPECT_EQ(ComponentAt(start), t1_);
  EXPECT_EQ(ComponentAt(start + MiB(4) - kPageBytes), t1_);
  EXPECT_EQ(ComponentAt(start + MiB(4)), t3_);
  EXPECT_EQ(ComponentAt(start + MiB(8) - kPageBytes), t3_);
  const AdmissionStats& stats = engine_.admission_stats();
  EXPECT_EQ(stats.split_orders, 1u);
  EXPECT_EQ(stats.split_shed_bytes, MiB(4));
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.admitted_bytes, MiB(4));
  // The shed remainder books as rejected bytes too (it did not move).
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.rejected_bytes, MiB(4));
  EXPECT_EQ(engine_.stats().bytes_migrated, MiB(4));
  EXPECT_EQ(engine_.admission_budget().admitted_bytes, MiB(4));
}

TEST_F(AdmissionEngineTest, SplitPrefixSkipsAlreadyResidentPages) {
  AdmissionTuning tuning = TestTuning();
  tuning.interval_budget_bytes = MiB(2);
  auto bw = MakeAdmissionController(AdmissionKind::kBandwidth, tuning);
  engine_.set_admission(bw.get(), tuning);
  VirtAddr start = BuildMapped(MiB(8), t3_);
  // Interval 1 moves [0, 2 MiB); re-submitting the whole order next interval
  // must extend the prefix past the already-resident pages, not re-count
  // them against the budget.
  EXPECT_TRUE(engine_.Submit(MigrationOrder{start, MiB(8), t1_, 0}).ok());
  EXPECT_EQ(ComponentAt(start + MiB(2) - kPageBytes), t1_);
  EXPECT_EQ(ComponentAt(start + MiB(2)), t3_);
  engine_.BeginInterval();
  EXPECT_TRUE(engine_.Submit(MigrationOrder{start, MiB(8), t1_, 0}).ok());
  EXPECT_EQ(ComponentAt(start + MiB(4) - kPageBytes), t1_);
  EXPECT_EQ(ComponentAt(start + MiB(4)), t3_);
  EXPECT_EQ(engine_.admission_stats().split_orders, 2u);
  EXPECT_EQ(engine_.stats().bytes_migrated, MiB(4));
}

// -------------------------------------------- vanilla golden differential --

std::string ReadGolden(const std::string& name) {
  std::ifstream in(std::string(MTM_TESTS_GOLDEN_DIR) + "/" + name, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file: " << name;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AdmissionDifferentialTest, VanillaByteIdenticalToSeedGoldens) {
  // The CI observability smoke configuration (see parallel_scan_test) with
  // the vanilla controller explicitly armed: metrics JSONL, trace, and
  // report must reproduce the goldens captured before the admission stage
  // existed.
  ExperimentConfig config;
  config.num_intervals = 12;
  config.target_accesses = 3'000'000;
  config.mtm.admission = AdmissionKind::kVanilla;
  Observability obs;
  RunOptions options;
  options.obs = &obs;
  RunResult result = RunExperiment("gups", SolutionKind::kMtm, config, options);
  EXPECT_EQ(result.admission, "vanilla");
  EXPECT_FALSE(result.admission_active);  // vanilla does not change reports
  EXPECT_EQ(result.admission_stats.deferred + result.admission_stats.rejected, 0u);

  std::ostringstream metrics;
  obs.timeline.WriteJsonl(metrics, obs.metrics);
  EXPECT_EQ(metrics.str(), ReadGolden("scan_gups_metrics.jsonl"));
  std::ostringstream trace;
  obs.trace.WriteChromeTrace(trace);
  EXPECT_EQ(trace.str(), ReadGolden("scan_gups_trace.json"));
  EXPECT_EQ(Render(result, ReportFormat::kJson) + "\n", ReadGolden("scan_gups_report.json"));
}

// ------------------------------------------------- ping-pong regression --

RunResult RunPingPong(AdmissionKind admission, const std::string& fault_spec) {
  // MTM places slow-tier-first, so the 192 MiB fast tier only fills after
  // ~24 intervals of promotion; the ping-pong dynamics (reclaim demotions
  // vs re-promotions) need the run to go well past that.
  ExperimentConfig config;
  config.num_intervals = 60;
  config.target_accesses = 0;  // run all intervals
  config.mtm.admission = admission;
  config.fault_spec = fault_spec;
  std::unique_ptr<Workload> workload =
      MakeWorkload("pingpong", config.sim_scale, config.num_threads, config.seed);
  Solution solution(SolutionKind::kMtm, config, *workload);
  return RunSimulation(*workload, solution, config);
}

TEST(AdmissionRegressionTest, PptReducesThrashOnPingPong) {
  // The PR's acceptance scenario: on the adversarial ping-pong workload
  // under injected copy failures, ppt must strictly reduce thrash-guard
  // abandons and flip-wasted migration bytes relative to vanilla.
  const std::string spec = "copy_fail:p=0.3";
  RunResult vanilla = RunPingPong(AdmissionKind::kVanilla, spec);
  RunResult ppt = RunPingPong(AdmissionKind::kPpt, spec);
  EXPECT_GT(vanilla.migration_stats.thrash_aborts, 0u);
  EXPECT_LT(ppt.migration_stats.thrash_aborts, vanilla.migration_stats.thrash_aborts);
  EXPECT_LT(ppt.admission_stats.flip_bytes, vanilla.admission_stats.flip_bytes);
  // The throttle actually engaged, and the report reflects the stage.
  EXPECT_GT(ppt.admission_stats.deferred, 0u);
  EXPECT_TRUE(ppt.admission_active);
  EXPECT_EQ(ppt.admission, "ppt");
}

TEST(AdmissionRegressionTest, PptReducesFlipBytesFaultFree) {
  // Even without faults, flips waste bandwidth; ppt damps them.
  RunResult vanilla = RunPingPong(AdmissionKind::kVanilla, "");
  RunResult ppt = RunPingPong(AdmissionKind::kPpt, "");
  EXPECT_GT(vanilla.admission_stats.flip_moves, 0u);
  EXPECT_LE(ppt.admission_stats.flip_bytes, vanilla.admission_stats.flip_bytes);
  EXPECT_GT(ppt.admission_stats.deferred, 0u);
}

TEST(AdmissionRegressionTest, BandwidthRespectsBudgetOnPingPong) {
  ExperimentConfig config;
  config.num_intervals = 12;
  config.target_accesses = 0;
  config.mtm.admission = AdmissionKind::kBandwidth;
  config.mtm.admission_budget_bytes = config.PromoteBatchBytes() / 2;
  std::unique_ptr<Workload> workload =
      MakeWorkload("pingpong", config.sim_scale, config.num_threads, config.seed);
  Solution solution(SolutionKind::kMtm, config, *workload);
  RunResult r = RunSimulation(*workload, solution, config);
  EXPECT_GT(r.admission_stats.rejected, 0u);
  // Total promoted bytes can never exceed budget * intervals.
  EXPECT_LE(r.admission_stats.admitted_bytes,
            config.mtm.admission_budget_bytes * u64{config.num_intervals});
}

}  // namespace
}  // namespace mtm
