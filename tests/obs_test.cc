// Tests for the observability layer: MetricsRegistry semantics, timeline
// snapshot determinism across identical seeded runs, and a golden-file test
// pinning the Chrome trace_event exporter's exact output.
#include <gtest/gtest.h>

#include <sstream>

#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/core/driver.h"
#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/core/solution.h"
#include "src/obs/metric_id.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"

namespace mtm {
namespace {

TEST(MetricsRegistryTest, CounterAddAndRead) {
  MetricsRegistry registry;
  MetricId id = registry.Counter("profiler/pte_scans");
  EXPECT_EQ(registry.counter(id), 0u);
  registry.Add(id);
  registry.Add(id, 41);
  EXPECT_EQ(registry.counter(id), 42u);
  EXPECT_EQ(registry.kind(id), MetricKind::kCounter);
  EXPECT_EQ(registry.name(id), "profiler/pte_scans");
}

TEST(MetricsRegistryTest, InterningIsIdempotent) {
  MetricsRegistry registry;
  MetricId a = registry.Counter("x");
  MetricId b = registry.Counter("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
  // A second, distinct name gets a fresh id.
  EXPECT_NE(registry.Gauge("y"), a);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, FindDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Find("absent"), kInvalidMetricId);
  EXPECT_EQ(registry.size(), 0u);
  MetricId id = registry.Gauge("present");
  EXPECT_EQ(registry.Find("present"), id);
}

TEST(MetricsRegistryTest, GaugeSetOverwrites) {
  MetricsRegistry registry;
  MetricId id = registry.Gauge("driver/hot_bytes");
  registry.Set(id, 3.5);
  registry.Set(id, 7.25);
  EXPECT_DOUBLE_EQ(registry.gauge(id), 7.25);
}

TEST(MetricsRegistryTest, HistogramAccumulatesRunningStats) {
  MetricsRegistry registry;
  MetricId id = registry.Histogram("wall/scan");
  registry.Observe(id, 1.0);
  registry.Observe(id, 3.0);
  registry.Observe(id, 8.0);
  const RunningStats& stats = registry.histogram(id);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 8.0);
}

TEST(MetricsRegistryTest, RegistrationOrderIsIterationOrder) {
  MetricsRegistry registry;
  registry.Counter("a");
  registry.Gauge("b");
  registry.Histogram("c");
  ASSERT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.name(MetricId{0}), "a");
  EXPECT_EQ(registry.name(MetricId{1}), "b");
  EXPECT_EQ(registry.name(MetricId{2}), "c");
}

TEST(ScopedTimerTest, NullRegistryIsANoOp) {
  // Must not crash or allocate; the disabled path is the common case.
  MTM_TRACE_SCOPE(nullptr, "noop");
  ScopedTimer timer(nullptr, "noop2");
}

TEST(ScopedTimerTest, RecordsIntoWallHistogram) {
  MetricsRegistry registry;
  {
    MTM_TRACE_SCOPE(&registry, "unit");
  }
  MetricId id = registry.Find("wall/unit");
  ASSERT_NE(id, kInvalidMetricId);
  EXPECT_EQ(registry.histogram(id).count(), 1u);
}

TEST(TimelineTest, SkipsWallMetrics) {
  MetricsRegistry registry;
  MetricId kept = registry.Counter("profiler/pte_scans");
  registry.Histogram("wall/scan");
  registry.Add(kept, 5);
  IntervalTimeline timeline;
  timeline.Snapshot(0, SimNanos(1000), registry);
  ASSERT_EQ(timeline.snapshots().size(), 1u);
  ASSERT_EQ(timeline.snapshots()[0].samples.size(), 1u);
  EXPECT_EQ(timeline.snapshots()[0].samples[0].id, kept);
  EXPECT_EQ(timeline.snapshots()[0].samples[0].count, 5u);
}

// Runs the same seeded experiment twice with full observability and demands
// byte-identical timeline JSONL and Chrome trace output — the acceptance
// criterion that makes traces diffable artifacts.
TEST(TimelineTest, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::string* jsonl, std::string* trace) {
    ExperimentConfig config;
    config.sim_scale = 4096;
    config.num_intervals = 6;
    config.target_accesses = 400'000;
    config.seed = 1234;
    Observability obs;
    RunOptions options;
    options.obs = &obs;
    RunExperiment("gups", SolutionKind::kMtm, config, options);
    std::ostringstream jsonl_os;
    obs.timeline.WriteJsonl(jsonl_os, obs.metrics);
    *jsonl = jsonl_os.str();
    std::ostringstream trace_os;
    obs.trace.WriteChromeTrace(trace_os);
    *trace = trace_os.str();
  };
  std::string jsonl1, trace1, jsonl2, trace2;
  run(&jsonl1, &trace1);
  run(&jsonl2, &trace2);
  EXPECT_FALSE(jsonl1.empty());
  EXPECT_FALSE(trace1.empty());
  EXPECT_EQ(jsonl1, jsonl2);
  EXPECT_EQ(trace1, trace2);
  // The trace must contain the per-interval profiling and migration spans.
  EXPECT_NE(trace1.find("\"name\":\"pte_scan\""), std::string::npos);
  EXPECT_NE(trace1.find("\"cat\":\"migration\""), std::string::npos);
  EXPECT_NE(trace1.find("\"name\":\"interval\""), std::string::npos);
}

// Golden-file test: the exporter's byte-exact output for a hand-built log.
// If this fails after an intentional format change, update the expectation
// and re-validate a real trace in Perfetto.
TEST(ChromeTraceTest, GoldenOutput) {
  TraceLog log;
  log.AddSpan("pte_scan", "profiling", SimNanos(1'500), SimNanos(2'250));
  log.AddSpan("migrate", "migration", SimNanos(4'000), SimNanos(125));
  log.AddCounter("hot_bytes", SimNanos(5'000), 1048576.0);
  std::ostringstream os;
  log.WriteChromeTrace(os);
  const char* expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"mtmsim\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"pte_scan\","
      "\"cat\":\"profiling\",\"ts\":1.500,\"dur\":2.250},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"name\":\"migrate\","
      "\"cat\":\"migration\",\"ts\":4.000,\"dur\":0.125},\n"
      "{\"ph\":\"C\",\"pid\":1,\"name\":\"hot_bytes\",\"ts\":5.000,"
      "\"args\":{\"value\":1.04858e+06}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"profiling\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"migration\"}}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);
}

// Golden-file test for async-flow arrows: a migrate_arm span linked to its
// finish span by an s/f pair (DESIGN.md §14). Byte-exact, like GoldenOutput.
TEST(ChromeTraceTest, FlowGoldenOutput) {
  TraceLog log;
  log.AddSpan("migrate_arm", "migration", SimNanos(1'000), SimNanos(500));
  log.AddSpan("migrate_finish", "migration", SimNanos(9'000), SimNanos(250));
  log.AddFlowStart("migrate_window", "migration", 7, SimNanos(1'000));
  log.AddFlowEnd("migrate_window", "migration", 7, SimNanos(9'000));
  std::ostringstream os;
  log.WriteChromeTrace(os);
  const char* expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"mtmsim\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"migrate_arm\","
      "\"cat\":\"migration\",\"ts\":1.000,\"dur\":0.500},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"migrate_finish\","
      "\"cat\":\"migration\",\"ts\":9.000,\"dur\":0.250},\n"
      "{\"ph\":\"s\",\"pid\":1,\"tid\":1,\"name\":\"migrate_window\","
      "\"cat\":\"migration\",\"id\":7,\"ts\":1.000},\n"
      "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":1,\"name\":\"migrate_window\","
      "\"cat\":\"migration\",\"id\":7,\"ts\":9.000},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"migration\"}}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ChromeTraceTest, FlowsAreOptInAndDeterministic) {
  // async_flows off (the default) must leave the trace without any flow
  // events — that is what keeps the golden traces byte-identical. On, the
  // trace gains matched s/f pairs and stays deterministic across runs.
  auto run = [](bool flows) {
    ExperimentConfig config;
    config.sim_scale = 4096;
    config.num_intervals = 6;
    config.target_accesses = 400'000;
    config.seed = 1234;
    Observability obs;
    obs.async_flows = flows;
    RunOptions options;
    options.obs = &obs;
    RunExperiment("gups", SolutionKind::kMtm, config, options);
    std::ostringstream trace_os;
    obs.trace.WriteChromeTrace(trace_os);
    return trace_os.str();
  };
  std::string off = run(false);
  EXPECT_EQ(off.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_EQ(off.find("migrate_window"), std::string::npos);
  std::string on = run(true);
  EXPECT_EQ(on, run(true));
  EXPECT_NE(on.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(on.find("\"ph\":\"f\",\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(on.find("\"name\":\"migrate_window\""), std::string::npos);
  // Every start is closed: equal counts of s and f events.
  auto count = [](const std::string& s, const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = s.find(needle); pos != std::string::npos;
         pos = s.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_GT(count(on, "\"ph\":\"s\""), 0u);
  EXPECT_EQ(count(on, "\"ph\":\"s\""), count(on, "\"ph\":\"f\""));
}

TEST(WriteObservabilityFilesTest, EmptyPathsSkipAndSucceed) {
  Observability obs;
  EXPECT_TRUE(WriteObservabilityFiles(obs, "", "").ok());
}

TEST(WriteObservabilityFilesTest, UnwritablePathErrors) {
  Observability obs;
  Status status = WriteObservabilityFiles(obs, "/nonexistent-dir/m.jsonl", "");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace mtm
