// Tests for the tiering policies (§6): MTM's fast-promotion/slow-demotion
// histogram policy and the baseline policies.
#include <gtest/gtest.h>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/migration/admission/admission.h"
#include "src/migration/migration_engine.h"
#include "src/migration/policy.h"
#include "src/profiling/profiler.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"

namespace mtm {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest()
      : machine_(Machine::OptaneFourTier(512)),
        frames_(machine_),
        t1_(machine_.TierOrder(0)[0]),
        t2_(machine_.TierOrder(0)[1]),
        t3_(machine_.TierOrder(0)[2]),
        t4_(machine_.TierOrder(0)[3]) {
    ctx_.machine = &machine_;
    ctx_.page_table = &page_table_;
    ctx_.frames = &frames_;
  }

  // Maps a region on `component` and returns its hotness entry.
  HotnessEntry MakeRegion(Bytes bytes, ComponentId component, double hotness, u32 socket = 0) {
    u32 vma = address_space_.Allocate(bytes, false, "r");
    VirtAddr start = address_space_.vma(vma).start;
    EXPECT_TRUE(page_table_.MapRange(start, address_space_.vma(vma).len, component, false).ok());
    EXPECT_TRUE(frames_.Reserve(component, address_space_.vma(vma).len).ok());
    HotnessEntry e;
    e.start = start;
    e.len = bytes;
    e.hotness = hotness;
    e.preferred_socket = socket;
    return e;
  }

  static ProfileOutput Wrap(std::vector<HotnessEntry> entries) {
    ProfileOutput out;
    out.entries = std::move(entries);
    return out;
  }

  Machine machine_;
  PageTable page_table_;
  AddressSpace address_space_;
  FrameAllocator frames_;
  PolicyContext ctx_;
  ComponentId t1_, t2_, t3_, t4_;
};

TEST_F(PolicyTest, MtmPromotesHottestToFastestTier) {
  HotnessEntry hot = MakeRegion(MiB(2), t3_, 3.0);
  HotnessEntry cold = MakeRegion(MiB(2), t3_, 0.1);
  MtmPolicy policy({.promote_batch_bytes = MiB(2)});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({cold, hot}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].start, hot.start);
  EXPECT_EQ(orders[0].dst, t1_);
}

TEST_F(PolicyTest, MtmRespectsBudget) {
  std::vector<HotnessEntry> entries;
  for (int i = 0; i < 8; ++i) {
    entries.push_back(MakeRegion(MiB(2), t3_, 3.0 - i * 0.1));
  }
  MtmPolicy policy({.promote_batch_bytes = MiB(4)});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap(entries), ctx_);
  Bytes promoted;
  for (const auto& o : orders) {
    promoted += o.len;
  }
  EXPECT_LE(promoted, MiB(4) + kHugePageBytes);
  EXPECT_GE(promoted, MiB(4));
}

TEST_F(PolicyTest, MtmDirectPromotionFromLowestTier) {
  // Fast promotion (§6.2): tier 4 pages go straight to tier 1, no
  // tier-by-tier staging.
  HotnessEntry hot = MakeRegion(MiB(2), t4_, 3.0);
  MtmPolicy policy({.promote_batch_bytes = MiB(2)});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({hot}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].dst, t1_);
}

TEST_F(PolicyTest, MtmSlowDemotionMakesRoom) {
  // Fill t1 with a cold resident; the hot incoming region displaces it one
  // tier down (to t2? no — demotion crosses to the slower class), and the
  // demotion order precedes the promotion.
  HotnessEntry resident = MakeRegion(frames_.capacity(t1_), t1_, 0.2);
  HotnessEntry hot = MakeRegion(MiB(2), t3_, 3.0);
  MtmPolicy policy({.promote_batch_bytes = MiB(2)});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({resident, hot}), ctx_);
  ASSERT_GE(orders.size(), 2u);
  // First a demotion of the cold resident to a slower class...
  EXPECT_EQ(orders[0].start, resident.start);
  EXPECT_TRUE(machine_.IsSlowerClass(t1_, orders[0].dst));
  // ...then the promotion into t1.
  EXPECT_EQ(orders.back().start, hot.start);
  EXPECT_EQ(orders.back().dst, t1_);
}

TEST_F(PolicyTest, MtmNeverDemotesHotterVictims) {
  // t1 full of hotter residents: the incoming region falls through to the
  // next tier instead ("2nd highest bucket to the 2nd-fastest tier").
  HotnessEntry resident = MakeRegion(frames_.capacity(t1_), t1_, 3.0);
  HotnessEntry warm = MakeRegion(MiB(2), t3_, 2.0);
  MtmPolicy policy({.promote_batch_bytes = MiB(2)});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({resident, warm}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].start, warm.start);
  EXPECT_EQ(orders[0].dst, t2_);
}

TEST_F(PolicyTest, MtmSkipsStoneColdRegions) {
  HotnessEntry cold = MakeRegion(MiB(2), t3_, 0.0);
  MtmPolicy policy({.promote_batch_bytes = MiB(2)});
  EXPECT_TRUE(policy.Decide(Wrap({cold}), ctx_).empty());
}

TEST_F(PolicyTest, MtmUsesPreferredSocketView) {
  // A region whose accesses come from socket 1 promotes to socket 1's
  // fastest tier (§6.2 multi-view).
  HotnessEntry hot = MakeRegion(MiB(2), t4_, 3.0, /*socket=*/1);
  MtmPolicy policy({.promote_batch_bytes = MiB(2)});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({hot}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].dst, machine_.TierOrder(1)[0]);
}

TEST_F(PolicyTest, MtmPartialPromotionTargetsSlowSlice) {
  // A region half-resident in t1 promotes its slow half, not its head.
  HotnessEntry hot = MakeRegion(MiB(4), t3_, 3.0);
  page_table_.ForEachMapping(hot.start, MiB(2), [&](VirtAddr, Bytes, Pte& pte) {
    pte.component = t1_;
  });
  frames_.Release(t3_, MiB(2));
  ASSERT_TRUE(frames_.Reserve(t1_, MiB(2)).ok());
  MtmPolicy policy({.promote_batch_bytes = MiB(2)});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({hot}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].start, hot.start + MiB(2).value());
}

TEST_F(PolicyTest, MtmAdaptiveHotnessScale) {
  // hotness_max <= 0 adapts to a foreign profiler's scale (raw counts).
  HotnessEntry hot = MakeRegion(MiB(2), t3_, 900.0);
  HotnessEntry cold = MakeRegion(MiB(2), t3_, 3.0);
  MtmPolicy policy({.promote_batch_bytes = MiB(2), .hotness_max = -1.0});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({cold, hot}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].start, hot.start);
}

TEST_F(PolicyTest, AutoNumaPromotesPmToLocalDramOnly) {
  // Kernel-style one-step move: PM page -> the DRAM of its own socket.
  HotnessEntry page = MakeRegion(kPageBytes, t4_, 2.0);  // PM1, home socket 1
  AutoNumaPolicy policy({.promote_batch_bytes = MiB(2), .patched = true});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({page}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].dst, machine_.TierOrder(1)[0]);  // DRAM1, not DRAM0
}

TEST_F(PolicyTest, AutoNumaRebalancesRemoteDram) {
  HotnessEntry page = MakeRegion(kPageBytes, t2_, 2.0, /*socket=*/0);  // DRAM1
  AutoNumaPolicy policy({.promote_batch_bytes = MiB(2), .patched = true});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({page}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].dst, t1_);
}

TEST_F(PolicyTest, AutoNumaPatchedRanksByFaults) {
  HotnessEntry cold = MakeRegion(kPageBytes, t3_, 1.0);
  HotnessEntry hot = MakeRegion(kPageBytes, t3_, 9.0);
  AutoNumaPolicy policy({.promote_batch_bytes = kPageBytes, .patched = true});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({cold, hot}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].start, hot.start);
}

TEST_F(PolicyTest, AutoNumaVanillaTakesArrivalOrder) {
  HotnessEntry first = MakeRegion(kPageBytes, t3_, 1.0);
  HotnessEntry second = MakeRegion(kPageBytes, t3_, 9.0);
  AutoNumaPolicy policy({.promote_batch_bytes = kPageBytes, .patched = false});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({first, second}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].start, first.start);
}

TEST_F(PolicyTest, AutoTieringOpportunisticPromotion) {
  HotnessEntry chunk = MakeRegion(MiB(2), t3_, 0.5);
  AutoTieringPolicy policy({.promote_batch_bytes = MiB(2)});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({chunk}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].dst, t1_);
}

TEST_F(PolicyTest, AutoTieringFallsBackToFullTier) {
  // Every faster tier full: still promotes to t1, relying on reclaim.
  MakeRegion(frames_.capacity(t1_), t1_, 0.0);
  MakeRegion(frames_.capacity(t2_), t2_, 0.0);
  HotnessEntry chunk = MakeRegion(MiB(2), t3_, 0.5);
  AutoTieringPolicy policy({.promote_batch_bytes = MiB(2)});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({chunk}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].dst, t1_);
}

TEST_F(PolicyTest, HememPromotesAboveThreshold) {
  HotnessEntry hot = MakeRegion(kPageBytes, t3_, 5.0);
  HotnessEntry cool = MakeRegion(kPageBytes, t3_, 1.0);
  HememPolicy policy({.promote_batch_bytes = MiB(2), .hot_threshold = 2.0});
  std::vector<MigrationOrder> orders = policy.Decide(Wrap({hot, cool}), ctx_);
  ASSERT_EQ(orders.size(), 1u);
  EXPECT_EQ(orders[0].start, hot.start);
  EXPECT_EQ(orders[0].dst, t1_);
}

TEST_F(PolicyTest, NullPolicyDoesNothing) {
  HotnessEntry hot = MakeRegion(MiB(2), t3_, 3.0);
  NullPolicy policy;
  EXPECT_TRUE(policy.Decide(Wrap({hot}), ctx_).empty());
}

}  // namespace
}  // namespace mtm
