// Tests for the strong unit/ID types (src/common/strong_types.h,
// src/common/types.h), the unit constructors (src/common/units.h), and the
// single-evaluation guarantee of the MTM_CHECK_* comparison macros.
//
// The compile-time sections are the point of the strong types: a
// SimNanos/Bytes or Vpn/Pfn mix-up must fail to build, and the
// static_asserts below pin that down so a future "convenience" implicit
// conversion cannot sneak in.
#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/types.h"
#include "src/common/units.h"

namespace mtm {
namespace {

// ---------------------------------------------------------------------------
// Expression-validity probes. CanX<A, B> is true iff `a x b` compiles.

template <typename A, typename B, typename = void>
struct CanAdd : std::false_type {};
template <typename A, typename B>
struct CanAdd<A, B, std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanSub : std::false_type {};
template <typename A, typename B>
struct CanSub<A, B, std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanMul : std::false_type {};
template <typename A, typename B>
struct CanMul<A, B, std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanCompare : std::false_type {};
template <typename A, typename B>
struct CanCompare<A, B, std::void_t<decltype(std::declval<A>() < std::declval<B>())>>
    : std::true_type {};

// --- The deliberate-mix-up matrix: every row here is a bug the old raw
// --- u64 aliases would have compiled silently.
static_assert(!CanAdd<SimNanos, Bytes>::value, "time + bytes must not compile");
static_assert(!CanAdd<Bytes, SimNanos>::value, "bytes + time must not compile");
static_assert(!CanSub<SimNanos, Bytes>::value, "time - bytes must not compile");
static_assert(!CanCompare<SimNanos, Bytes>::value, "time < bytes must not compile");
static_assert(!std::is_constructible_v<Vpn, Pfn>, "Vpn from Pfn must not compile");
static_assert(!std::is_constructible_v<Pfn, Vpn>, "Pfn from Vpn must not compile");
static_assert(!std::is_assignable_v<Vpn&, Pfn>, "vpn = pfn must not compile");
static_assert(!CanCompare<Vpn, Pfn>::value, "vpn < pfn must not compile");
static_assert(!CanSub<Vpn, Pfn>::value, "vpn - pfn must not compile");

// --- No implicit raw-integer bridging in either direction.
static_assert(!std::is_convertible_v<u64, Bytes>, "construction must be explicit");
static_assert(!std::is_convertible_v<u64, SimNanos>, "construction must be explicit");
static_assert(!std::is_convertible_v<Bytes, u64>, "unwrapping goes through .value()");
static_assert(!std::is_convertible_v<SimNanos, u64>, "unwrapping goes through .value()");
static_assert(!std::is_convertible_v<u64, Vpn>, "construction must be explicit");
static_assert(!CanAdd<Bytes, u64>::value, "bytes + raw count must not compile");
static_assert(!CanCompare<Bytes, u64>::value, "bytes < raw count must not compile");
static_assert(!CanCompare<SimNanos, int>::value, "time < raw int must not compile");

// --- Dimensionally meaningless operations on the allowed types.
static_assert(!CanMul<Bytes, Bytes>::value, "bytes * bytes has no meaning here");
static_assert(!CanMul<SimNanos, SimNanos>::value, "time * time has no meaning here");
static_assert(!CanAdd<Vpn, Vpn>::value, "page numbers do not add");
static_assert(!CanMul<Vpn, u64>::value, "page numbers do not scale");

// --- And the arithmetic that IS meaningful, with the expected result types.
static_assert(std::is_same_v<decltype(Bytes{} + Bytes{}), Bytes>);
static_assert(std::is_same_v<decltype(Bytes{} / kPageBytes), u64>, "ratio is dimensionless");
static_assert(std::is_same_v<decltype(Bytes{} % kPageBytes), Bytes>, "remainder keeps dimension");
static_assert(std::is_same_v<decltype(Bytes{} * u64{2}), Bytes>);
static_assert(std::is_same_v<decltype(SimNanos{} - SimNanos{}), SimNanos>);
static_assert(std::is_same_v<decltype(Vpn{} - Vpn{}), u64>, "ordinal difference is a count");
static_assert(std::is_same_v<decltype(Vpn{} + u64{3}), Vpn>, "ordinal offset by a count");

// --- Everything stays constexpr-friendly.
static_assert(MiB(2) == kHugePageBytes);
static_assert(Seconds(1) / Millis(1) == 1000);
static_assert(NumPages(kHugePageBytes) == kPagesPerHugePage);

TEST(StrongTypeTest, QuantityArithmetic) {
  Bytes b = MiB(3);
  b += MiB(1);
  EXPECT_EQ(b, MiB(4));
  b -= MiB(2);
  EXPECT_EQ(b, MiB(2));
  EXPECT_EQ(b * 3, MiB(6));
  EXPECT_EQ(3 * b, MiB(6));
  EXPECT_EQ(MiB(6) / 3, MiB(2));
  EXPECT_EQ(MiB(6) / MiB(2), 3u);
  EXPECT_EQ((MiB(2) + Bytes(5)) % kHugePageBytes, Bytes(5));
  EXPECT_LT(MiB(1), MiB(2));
  EXPECT_TRUE(Bytes{}.IsZero());
  EXPECT_FALSE(static_cast<bool>(Bytes{}));
  EXPECT_TRUE(static_cast<bool>(Bytes(1)));
}

TEST(StrongTypeTest, OrdinalArithmetic) {
  Vpn v(100);
  EXPECT_EQ(v + 5, Vpn(105));
  EXPECT_EQ(v - 5, Vpn(95));
  EXPECT_EQ(Vpn(105) - v, 5u);
  EXPECT_EQ(++v, Vpn(101));
  EXPECT_EQ(v++, Vpn(101));
  EXPECT_EQ(v, Vpn(102));
  EXPECT_LT(Pfn(1), Pfn(2));
  EXPECT_LT(TierId(0), TierId(3));
}

TEST(StrongTypeTest, DefaultConstructionIsZero) {
  EXPECT_EQ(Bytes{}, Bytes(0));
  EXPECT_EQ(SimNanos{}, SimNanos(0));
  EXPECT_EQ(Vpn{}, Vpn(0));
}

TEST(StrongTypeTest, Streaming) {
  std::ostringstream os;
  os << MiB(2) << " " << Nanos(90) << " " << Vpn(7);
  EXPECT_EQ(os.str(), "2097152 90 7");
}

TEST(StrongTypeTest, Hashing) {
  std::unordered_set<Vpn> set;
  set.insert(Vpn(1));
  set.insert(Vpn(2));
  set.insert(Vpn(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(std::hash<Bytes>{}(MiB(1)), std::hash<Bytes>{}(MiB(1)));
}

TEST(UnitsTest, SizeConstructorsAgree) {
  EXPECT_EQ(KiB(1024), MiB(1));
  EXPECT_EQ(MiB(1024), GiB(1));
  EXPECT_EQ(GiB(1024), TiB(1));
  EXPECT_EQ(TiB(1).value(), u64{1} << 40);
}

TEST(UnitsTest, TimeConstructorsAgree) {
  EXPECT_EQ(Micros(1), Nanos(1000));
  EXPECT_EQ(Millis(1), Micros(1000));
  EXPECT_EQ(Seconds(1), Millis(1000));
  EXPECT_EQ(Seconds(10), Nanos(10'000'000'000ull));
}

TEST(UnitsTest, LargeSizesNearTheTopOfU64) {
  // 2^24 - 1 TiB is the largest whole-TiB count representable in u64.
  const u64 max_tib = (u64{1} << 24) - 1;
  EXPECT_EQ(TiB(max_tib).value(), max_tib << 40);
  EXPECT_EQ(TiB(max_tib) / TiB(1), max_tib);
  // Page-count conversions survive at that extreme.
  EXPECT_EQ(NumPages(TiB(max_tib)), max_tib << (40 - kPageShift));
  EXPECT_EQ(PagesToBytes(NumPages(TiB(max_tib))), TiB(max_tib));
}

TEST(UnitsTest, ConversionPrecision) {
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(10)), 10.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Millis(1500)), 1.5);
  EXPECT_DOUBLE_EQ(ToMillis(Micros(1500)), 1.5);
  EXPECT_DOUBLE_EQ(ToMicros(Nanos(1500)), 1.5);
  EXPECT_DOUBLE_EQ(ToMiB(kHugePageBytes), 2.0);
  EXPECT_DOUBLE_EQ(ToMiB(KiB(512)), 0.5);
  EXPECT_DOUBLE_EQ(ToGiB(GiB(96)), 96.0);
  // Doubles hold integers exactly up to 2^53; GiB values well past any
  // machine in the paper stay exact.
  EXPECT_DOUBLE_EQ(ToGiB(TiB(1024)), 1024.0 * 1024.0);
}

TEST(UnitsTest, RoundingConstructorsClampAndTruncate) {
  EXPECT_EQ(NanosFromDouble(1234.9), Nanos(1234));
  EXPECT_EQ(NanosFromDouble(-5.0), SimNanos{});
  EXPECT_EQ(BytesFromDouble(4096.7), Bytes(4096));
  EXPECT_EQ(BytesFromDouble(-1.0), Bytes{});
}

TEST(UnitsTest, PageCountRoundTrips) {
  EXPECT_EQ(NumPages(Bytes{}), 0u);
  EXPECT_EQ(NumPages(Bytes(1)), 1u);
  EXPECT_EQ(NumPages(kPageBytes), 1u);
  EXPECT_EQ(NumPages(kPageBytes + Bytes(1)), 2u);
  EXPECT_EQ(NumHugePages(kHugePageBytes + Bytes(1)), 2u);
  EXPECT_EQ(HugePagesToBytes(NumHugePages(GiB(1))), GiB(1));
}

TEST(UnitsTest, AlignmentOnLengths) {
  EXPECT_EQ(PageAlignUp(Bytes(1)), kPageBytes);
  EXPECT_EQ(PageAlignDown(kPageBytes + Bytes(7)), kPageBytes);
  EXPECT_EQ(HugeAlignUp(MiB(3)), MiB(4));
  EXPECT_EQ(HugeAlignDown(MiB(3)), MiB(2));
}

// Regression for the classic CHECK-macro bug: each operand of the
// comparison macros must be evaluated exactly once, or side-effecting
// arguments (common in call sites like MTM_CHECK_EQ(Pop(), expected))
// misbehave in release builds.
TEST(LoggingTest, CheckMacrosEvaluateOperandsOnce) {
  int x = 0;
  MTM_CHECK_EQ(++x, 1);
  EXPECT_EQ(x, 1);

  int y = 5;
  MTM_CHECK_NE(y++, 0);
  EXPECT_EQ(y, 6);

  int a = 1;
  MTM_CHECK_LT(a++, 5);
  EXPECT_EQ(a, 2);

  int b = 1;
  MTM_CHECK_LE(b++, 1);
  EXPECT_EQ(b, 2);

  int c = 5;
  MTM_CHECK_GT(c--, 1);
  EXPECT_EQ(c, 4);

  int d = 5;
  MTM_CHECK_GE(d--, 5);
  EXPECT_EQ(d, 4);
}

TEST(LoggingTest, CheckMacrosWorkOnStrongTypes) {
  MTM_CHECK_EQ(MiB(2), kHugePageBytes);
  MTM_CHECK_LT(Nanos(90), Micros(1));
  MTM_CHECK_GE(Vpn(7), Vpn(7));
}

}  // namespace
}  // namespace mtm
