// Tests for src/common: RNG and samplers, histogram, stats, status, units.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/units.h"

namespace mtm {
namespace {

TEST(TypesTest, PageConstants) {
  EXPECT_EQ(kPageSize, 4096u);
  EXPECT_EQ(kHugePageSize, 2u * 1024 * 1024);
  EXPECT_EQ(kPagesPerHugePage, 512u);
}

TEST(TypesTest, Alignment) {
  EXPECT_EQ(PageAlignDown(VirtAddr{4097}), VirtAddr{4096});
  EXPECT_EQ(PageAlignUp(VirtAddr{4097}), VirtAddr{8192});
  EXPECT_EQ(PageAlignUp(VirtAddr{4096}), VirtAddr{4096});
  EXPECT_EQ(HugeAlignDown(VirtAddr{kHugePageSize + 5}), VirtAddr{kHugePageSize});
  EXPECT_EQ(HugeAlignUp(VirtAddr{kHugePageSize + 5}), VirtAddr{2 * kHugePageSize});
  EXPECT_TRUE(IsHugeAligned(VirtAddr{4 * kHugePageSize}));
  EXPECT_FALSE(IsHugeAligned(VirtAddr{kHugePageSize + kPageSize}));
  EXPECT_TRUE(IsPageAligned(VirtAddr{8192}));
}

TEST(TypesTest, VirtAddrHelpers) {
  VirtAddr a{0x5500'0000'1234ull};
  EXPECT_EQ(a.OffsetIn(kPageSize), 0x234u);
  EXPECT_EQ(a.Shifted(kPageShift), 0x5500'0000'1ull);
  EXPECT_TRUE(a.AlignDown(kPageSize).IsAligned(kPageSize));
  EXPECT_EQ(a + Bytes(0x1000), VirtAddr{0x5500'0000'2234ull});
  EXPECT_EQ((a + Bytes(16)) - a, 16u);
}

TEST(TypesTest, VpnRoundTrip) {
  VirtAddr addr{0x55001234'5000ull};
  EXPECT_EQ(AddrOfVpn(VpnOf(addr)), PageAlignDown(addr));
}

TEST(UnitsTest, Sizes) {
  EXPECT_EQ(KiB(1), Bytes(1024));
  EXPECT_EQ(MiB(2), Bytes(2ull * 1024 * 1024));
  EXPECT_EQ(GiB(1), Bytes(1024ull * 1024 * 1024));
  EXPECT_DOUBLE_EQ(ToMiB(MiB(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToGiB(GiB(7)), 7.0);
}

TEST(UnitsTest, Times) {
  EXPECT_EQ(Micros(3), Nanos(3000));
  EXPECT_EQ(Millis(2), Nanos(2'000'000));
  EXPECT_EQ(Seconds(1), Nanos(1'000'000'000));
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(4)), 4.0);
  EXPECT_DOUBLE_EQ(ToMicros(Micros(9)), 9.0);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedInRange) {
  Rng rng(7);
  for (u64 bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfSampler zipf(1000, 0.99);
  Rng rng(17);
  std::map<u64, int> counts;
  for (int i = 0; i < 100000; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  // Rank 0 must dominate every other rank.
  for (const auto& [rank, count] : counts) {
    if (rank != 0) {
      EXPECT_GE(counts[0], count) << "rank " << rank;
    }
  }
  // And the head must be heavy: top-10 ranks carry a large share at 0.99.
  int head = 0;
  for (u64 r = 0; r < 10; ++r) {
    head += counts.count(r) ? counts[r] : 0;
  }
  EXPECT_GT(head, 100000 / 4);
}

TEST(ZipfTest, AllSamplesInRange) {
  ZipfSampler zipf(50, 0.5);
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 50u);
  }
}

TEST(ZipfTest, LowThetaFlatter) {
  Rng rng(23);
  ZipfSampler skewed(1000, 0.99);
  ZipfSampler flat(1000, 0.1);
  int skewed_zero = 0;
  int flat_zero = 0;
  for (int i = 0; i < 50000; ++i) {
    skewed_zero += skewed.Sample(rng) == 0;
    flat_zero += flat.Sample(rng) == 0;
  }
  EXPECT_GT(skewed_zero, flat_zero * 2);
}

TEST(GaussianIndexSamplerTest, CenteredAndBounded) {
  Rng rng(29);
  GaussianIndexSampler sampler(1000, 500.0, 100.0);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    u64 v = sampler.Sample(rng);
    EXPECT_LT(v, 1000u);
    stats.Add(static_cast<double>(v));
  }
  EXPECT_NEAR(stats.mean(), 500.0, 5.0);
  EXPECT_NEAR(stats.stddev(), 100.0, 5.0);
}

TEST(HistogramTest, BucketBoundaries) {
  BucketedHistogram<int> hist(0.0, 10.0, 10);
  EXPECT_EQ(hist.BucketFor(-1.0), 0u);
  EXPECT_EQ(hist.BucketFor(0.0), 0u);
  EXPECT_EQ(hist.BucketFor(0.5), 0u);
  EXPECT_EQ(hist.BucketFor(5.0), 5u);
  EXPECT_EQ(hist.BucketFor(9.99), 9u);
  EXPECT_EQ(hist.BucketFor(10.0), 9u);
  EXPECT_EQ(hist.BucketFor(100.0), 9u);
}

TEST(HistogramTest, UpdateMovesBuckets) {
  BucketedHistogram<int> hist(0.0, 10.0, 10);
  hist.Update(1, 1.5);
  EXPECT_EQ(hist.bucket(1).size(), 1u);
  hist.Update(1, 8.5);
  EXPECT_EQ(hist.bucket(1).size(), 0u);
  EXPECT_EQ(hist.bucket(8).size(), 1u);
  EXPECT_EQ(hist.size(), 1u);
}

TEST(HistogramTest, HottestAndColdestOrder) {
  BucketedHistogram<int> hist(0.0, 3.0, 16);
  hist.Update(10, 0.1);
  hist.Update(20, 2.9);
  hist.Update(30, 1.5);
  std::vector<int> hottest = hist.HottestFirst();
  ASSERT_EQ(hottest.size(), 3u);
  EXPECT_EQ(hottest[0], 20);
  EXPECT_EQ(hottest[2], 10);
  std::vector<int> coldest = hist.ColdestFirst();
  EXPECT_EQ(coldest[0], 10);
  EXPECT_EQ(coldest[2], 20);
}

TEST(HistogramTest, RemoveAndClear) {
  BucketedHistogram<int> hist(0.0, 1.0, 4);
  hist.Update(1, 0.2);
  hist.Update(2, 0.9);
  hist.Remove(1);
  EXPECT_FALSE(hist.Contains(1));
  EXPECT_TRUE(hist.Contains(2));
  EXPECT_EQ(hist.size(), 1u);
  hist.Clear();
  EXPECT_EQ(hist.size(), 0u);
}

// Property: histogram ordering agrees with a naive sort by bucket index.
TEST(HistogramTest, PropertyAgainstNaive) {
  Rng rng(31);
  BucketedHistogram<int> hist(0.0, 100.0, 20);
  std::map<int, double> values;
  for (int step = 0; step < 500; ++step) {
    int id = static_cast<int>(rng.NextBounded(50));
    double v = rng.NextDouble() * 100.0;
    hist.Update(id, v);
    values[id] = v;
  }
  std::vector<int> hottest = hist.HottestFirst();
  ASSERT_EQ(hottest.size(), values.size());
  for (std::size_t i = 1; i < hottest.size(); ++i) {
    EXPECT_GE(hist.BucketFor(values[hottest[i - 1]]), hist.BucketFor(values[hottest[i]]));
  }
}

TEST(RunningStatsTest, Moments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(EmaTest, Equation2) {
  // WHI_i = alpha*HI_i + (1-alpha)*WHI_{i-1} with alpha = 0.5 (the paper's
  // default).
  Ema ema(0.5);
  EXPECT_FALSE(ema.initialized());
  EXPECT_DOUBLE_EQ(ema.Update(3.0), 3.0);  // first observation initializes
  EXPECT_DOUBLE_EQ(ema.Update(1.0), 2.0);
  EXPECT_DOUBLE_EQ(ema.Update(0.0), 1.0);
}

TEST(EmaTest, AlphaOneIgnoresHistory) {
  Ema ema(1.0);
  ema.Update(5.0);
  EXPECT_DOUBLE_EQ(ema.Update(1.0), 1.0);
}

TEST(EmaTest, AlphaZeroKeepsHistory) {
  Ema ema(0.0);
  ema.Update(5.0);
  EXPECT_DOUBLE_EQ(ema.Update(1.0), 5.0);
}

TEST(PercentileTest, Basics) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.5);
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(OkStatus().ok());
  Status s = InvalidArgumentError("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad");
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
}

TEST(StatusTest, AvailabilityCodes) {
  Status u = UnavailableError("tier offline");
  EXPECT_EQ(u.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsUnavailable(u));
  EXPECT_EQ(u.ToString(), "UNAVAILABLE: tier offline");
  Status d = DeadlineExceededError("backoff");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsDeadlineExceeded(d));
  EXPECT_EQ(d.ToString(), "DEADLINE_EXCEEDED: backoff");
  EXPECT_FALSE(IsUnavailable(OkStatus()));
  EXPECT_FALSE(IsDeadlineExceeded(u));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(OkStatus(), OkStatus());
  EXPECT_EQ(InternalError("a"), InternalError("a"));
  EXPECT_NE(InternalError("a"), InternalError("b"));  // same code, new message
  EXPECT_NE(InternalError("a"), InvalidArgumentError("a"));
  EXPECT_NE(OkStatus(), UnavailableError("x"));
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err(InternalError("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOut) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

}  // namespace
}  // namespace mtm
