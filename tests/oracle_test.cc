// Tests for the profiling-quality oracle (Figure 1 recall/accuracy).
#include <gtest/gtest.h>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/profiling/oracle.h"
#include "src/profiling/profiler.h"

namespace mtm {
namespace {

constexpr VirtAddr kBase{0x5500'0000'0000ull};

HotnessEntry Entry(VirtAddr start, Bytes len, double hotness) {
  HotnessEntry e;
  e.start = start;
  e.len = len;
  e.hotness = hotness;
  return e;
}

TEST(OracleTest, NormalizeSortsAndMerges) {
  std::vector<HotRange> ranges = {
      {kBase + MiB(4).value(), MiB(2)}, {kBase, MiB(1)}, {kBase + MiB(5).value(), MiB(3)}};
  Oracle::Normalize(ranges);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].start, kBase);
  EXPECT_EQ(ranges[1].start, kBase + MiB(4).value());
  EXPECT_EQ(ranges[1].len, MiB(4));  // [4,6) + [5,8) -> [4,8)
}

TEST(OracleTest, OverlapBytes) {
  std::vector<HotRange> truth = {{kBase, MiB(2)}, {kBase + MiB(8).value(), MiB(2)}};
  Oracle::Normalize(truth);
  EXPECT_EQ(Oracle::OverlapBytes(truth, kBase, MiB(1)), MiB(1));
  EXPECT_EQ(Oracle::OverlapBytes(truth, kBase + MiB(1).value(), MiB(2)), MiB(1));
  EXPECT_EQ(Oracle::OverlapBytes(truth, kBase + MiB(4).value(), MiB(2)), Bytes{});
  EXPECT_EQ(Oracle::OverlapBytes(truth, kBase, MiB(16)), MiB(4));
}

TEST(OracleTest, PerfectDetection) {
  ProfileOutput out;
  out.entries.push_back(Entry(kBase, MiB(4), 3.0));
  ProfilingQuality q = Oracle::Evaluate({{kBase, MiB(4)}}, out);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.accuracy, 1.0);
}

TEST(OracleTest, CoarseRegionLowersAccuracy) {
  // A DAMON-style giant region covering the hot set plus cold space: the
  // claim is clipped to the true volume, so only the region's head counts —
  // cold bytes crowd out hot ones and both recall and accuracy suffer (the
  // Figure 1(b) behavior).
  ProfileOutput out;
  out.entries.push_back(Entry(kBase, MiB(16), 1.0));
  ProfilingQuality q = Oracle::Evaluate({{kBase + MiB(2).value(), MiB(4)}}, out);
  EXPECT_NEAR(q.recall, 0.5, 1e-9);    // only [2,4) of the hot [2,6) is in the clipped claim
  EXPECT_NEAR(q.accuracy, 0.5, 1e-9);  // half the claimed 4 MiB is actually hot
  EXPECT_EQ(q.claimed_hot_bytes, MiB(4));
}

TEST(OracleTest, MissedHotSetLowersRecall) {
  ProfileOutput out;
  out.entries.push_back(Entry(kBase, MiB(2), 2.0));  // half the hot set
  ProfilingQuality q = Oracle::Evaluate({{kBase, MiB(4)}}, out);
  EXPECT_NEAR(q.recall, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(q.accuracy, 1.0);
}

TEST(OracleTest, ClaimsRankedByHotnessUntilTrueVolume) {
  // The cold-but-claimed entry ranks below the hot ones and is not taken
  // once the claimed volume matches the truth volume.
  ProfileOutput out;
  out.entries.push_back(Entry(kBase + MiB(8).value(), MiB(4), 0.2));   // cold claim
  out.entries.push_back(Entry(kBase, MiB(4), 3.0));            // true hot
  ProfilingQuality q = Oracle::Evaluate({{kBase, MiB(4)}}, out);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.accuracy, 1.0);
  EXPECT_EQ(q.claimed_hot_bytes, MiB(4));
}

TEST(OracleTest, ZeroHotnessNeverClaimed) {
  ProfileOutput out;
  out.entries.push_back(Entry(kBase, MiB(4), 0.0));
  ProfilingQuality q = Oracle::Evaluate({{kBase, MiB(4)}}, out);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.accuracy, 0.0);
}

TEST(OracleTest, EmptyTruthYieldsZeroes) {
  ProfileOutput out;
  out.entries.push_back(Entry(kBase, MiB(4), 1.0));
  ProfilingQuality q = Oracle::Evaluate({}, out);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_EQ(q.true_hot_bytes, Bytes{});
}

TEST(OracleTest, WrongPlaceClaims) {
  ProfileOutput out;
  out.entries.push_back(Entry(kBase + MiB(32).value(), MiB(4), 3.0));
  ProfilingQuality q = Oracle::Evaluate({{kBase, MiB(4)}}, out);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.accuracy, 0.0);
}

}  // namespace
}  // namespace mtm
