// Tests for MTM's adaptive profiler (§5): Equation-1 budget, multi-scan
// hotness, merge/split dynamics, quota redistribution, overhead control,
// PEBS-assisted slow-tier profiling, and the ablation switches.
#include <gtest/gtest.h>

#include <memory>

#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/mem/frame_allocator.h"
#include "src/mem/placement.h"
#include "src/profiling/mtm_profiler.h"
#include "src/profiling/profiler.h"
#include "src/sim/access_engine.h"
#include "src/sim/clock.h"
#include "src/sim/counters.h"
#include "src/sim/machine.h"
#include "src/sim/page_table.h"
#include "src/sim/pebs.h"

namespace mtm {
namespace {

class MtmProfilerTest : public ::testing::Test {
 protected:
  MtmProfilerTest()
      : machine_(Machine::OptaneFourTier(512)),
        frames_(machine_),
        counters_(machine_.num_components()),
        engine_(machine_, page_table_, clock_, counters_, AccessEngine::Config{}),
        pebs_(machine_, PebsEngine::Config{}) {
    engine_.set_pebs(&pebs_);
  }

  // Allocates a VMA and maps all of it on `component` with base pages.
  VirtAddr BuildMapped(Bytes bytes, ComponentId component) {
    u32 vma = address_space_.Allocate(bytes, false, "w");
    VirtAddr start = address_space_.vma(vma).start;
    EXPECT_TRUE(page_table_.MapRange(start, address_space_.vma(vma).len, component, false).ok());
    return start;
  }

  MtmProfiler::Config DefaultConfig() {
    MtmProfiler::Config config;
    config.interval_ns = Millis(20);
    config.one_scan_overhead_ns = Nanos(120);
    return config;
  }

  std::unique_ptr<MtmProfiler> MakeProfiler(MtmProfiler::Config config) {
    auto p = std::make_unique<MtmProfiler>(machine_, page_table_, address_space_, engine_,
                                           &pebs_, config);
    p->Initialize();
    return p;
  }

  // Runs one profiling interval, touching [hot_start, hot_start+hot_len)
  // heavily before every scan tick.
  ProfileOutput RunInterval(MtmProfiler& profiler, VirtAddr hot_start, Bytes hot_len) {
    profiler.OnIntervalStart();
    for (u32 tick = 0; tick < 3; ++tick) {
      for (VirtAddr a = hot_start; a < hot_start + hot_len; a += kPageSize) {
        page_table_.Touch(a, false);
      }
      profiler.OnScanTick(tick);
    }
    return profiler.OnIntervalEnd();
  }

  Machine machine_;
  SimClock clock_;
  PageTable page_table_;
  AddressSpace address_space_;
  FrameAllocator frames_;
  MemCounters counters_;
  AccessEngine engine_;
  PebsEngine pebs_;
};

TEST_F(MtmProfilerTest, Equation1Budget) {
  BuildMapped(MiB(16), ComponentId(0));
  MtmProfiler::Config config = DefaultConfig();
  auto profiler = MakeProfiler(config);
  // num_ps = interval * overhead / (effective_scan * num_scans); the
  // effective scan cost doubles due to the 1-in-12 hint-fault amortization
  // (hint fault = 12 scans, one per 12 scans).
  double effective = 120.0 * 2.0;
  u64 expected = static_cast<u64>(20e6 * 0.05 / (effective * 3));
  EXPECT_EQ(profiler->NumPageSamples(), expected);
}

TEST_F(MtmProfilerTest, BudgetScalesWithOverheadTarget) {
  BuildMapped(MiB(16), ComponentId(0));
  MtmProfiler::Config config = DefaultConfig();
  config.overhead_fraction = 0.10;
  auto ten = MakeProfiler(config);
  config.overhead_fraction = 0.01;
  auto one = MakeProfiler(config);
  EXPECT_NEAR(static_cast<double>(ten->NumPageSamples()) /
                  static_cast<double>(one->NumPageSamples()),
              10.0, 0.5);
}

TEST_F(MtmProfilerTest, InitialRegionsArePdeSized) {
  BuildMapped(MiB(16), ComponentId(0));
  auto profiler = MakeProfiler(DefaultConfig());
  EXPECT_EQ(profiler->regions().size(), MiB(16) / kHugePageBytes);
  for (const auto& [start, region] : profiler->regions()) {
    EXPECT_EQ(region.bytes(), kHugePageBytes);
  }
}

TEST_F(MtmProfilerTest, HotRegionsRankAboveCold) {
  VirtAddr start = BuildMapped(MiB(16), ComponentId(0));  // DRAM: PTE-scan profiled
  auto profiler = MakeProfiler(DefaultConfig());
  VirtAddr hot_start = start + MiB(4).value();
  ProfileOutput out;
  for (int i = 0; i < 4; ++i) {
    out = RunInterval(*profiler, hot_start, MiB(2));
  }
  double hot_hotness = 0;
  double cold_hotness = 0;
  int cold_count = 0;
  for (const HotnessEntry& e : out.entries) {
    if (e.start >= hot_start && e.end() <= hot_start + MiB(2).value()) {
      hot_hotness = std::max(hot_hotness, e.hotness);
    } else if (e.start >= hot_start + MiB(2).value() || e.end() <= hot_start) {
      cold_hotness += e.hotness;
      ++cold_count;
    }
  }
  ASSERT_GT(cold_count, 0);
  EXPECT_GT(hot_hotness, 2.0);  // touched before every scan: HI ~ num_scans
  EXPECT_LT(cold_hotness / cold_count, 0.5);
}

TEST_F(MtmProfilerTest, WhiFollowsEquation2) {
  VirtAddr start = BuildMapped(MiB(4), ComponentId(0));
  MtmProfiler::Config config = DefaultConfig();
  config.adaptive_regions = false;  // keep regions stable for exact math
  auto profiler = MakeProfiler(config);
  // Two hot intervals then one cold: WHI = 0.5*0 + 0.5*(0.5*3 + 0.5*3) = 1.5.
  RunInterval(*profiler, start, MiB(4));
  RunInterval(*profiler, start, MiB(4));
  ProfileOutput out = RunInterval(*profiler, start + MiB(4).value(), Bytes{});  // nothing touched
  for (const HotnessEntry& e : out.entries) {
    EXPECT_NEAR(e.hotness, 1.5, 0.01);
  }
}

TEST_F(MtmProfilerTest, MergesColdNeighbors) {
  BuildMapped(MiB(32), ComponentId(0));
  auto profiler = MakeProfiler(DefaultConfig());
  std::size_t before = profiler->regions().size();
  ProfileOutput out = RunInterval(*profiler, VirtAddr{}, Bytes{});  // all cold
  EXPECT_GT(out.regions_merged, 0u);
  EXPECT_LT(profiler->regions().size(), before);
}

TEST_F(MtmProfilerTest, SplitsMixedRegions) {
  VirtAddr start = BuildMapped(MiB(32), ComponentId(0));
  auto profiler = MakeProfiler(DefaultConfig());
  // Merge everything first (all cold), then heat half of the space: the
  // giant region shows high sample disparity and splits, huge-aligned.
  RunInterval(*profiler, VirtAddr{}, Bytes{});
  u64 splits = 0;
  for (int i = 0; i < 6; ++i) {
    ProfileOutput out = RunInterval(*profiler, start, MiB(16));
    splits += out.regions_split;
  }
  EXPECT_GT(splits, 0u);
  for (const auto& [rs, region] : profiler->regions()) {
    if (region.bytes() > kHugePageBytes) {
      EXPECT_TRUE(IsHugeAligned(region.start) || rs == profiler->regions().begin()->first);
    }
  }
}

TEST_F(MtmProfilerTest, QuotaConservedAtBudget) {
  BuildMapped(MiB(64), ComponentId(0));
  auto profiler = MakeProfiler(DefaultConfig());
  VirtAddr start = address_space_.vmas()[0].start;
  for (int i = 0; i < 5; ++i) {
    RunInterval(*profiler, start + static_cast<u64>(i % 2) * MiB(16).value(), MiB(8));
  }
  u64 total_quota = 0;
  for (const auto& [rs, region] : profiler->regions()) {
    EXPECT_GE(region.sample_quota, 1u);
    total_quota += region.sample_quota;
  }
  EXPECT_EQ(total_quota, profiler->NumPageSamples());
}

TEST_F(MtmProfilerTest, OverheadControlEscalatesTauM) {
  BuildMapped(MiB(64), ComponentId(0));
  MtmProfiler::Config config = DefaultConfig();
  // Tiny budget: far fewer samples than regions. Freeze region formation so
  // merging cannot hide the escalation itself.
  config.overhead_fraction = 0.0001;
  config.adaptive_regions = false;
  auto profiler = MakeProfiler(config);
  ASSERT_LT(profiler->NumPageSamples(), profiler->regions().size());
  double tau0 = profiler->current_tau_m();
  RunInterval(*profiler, VirtAddr{}, Bytes{});
  EXPECT_GT(profiler->current_tau_m(), tau0);
}

TEST_F(MtmProfilerTest, ScanCountRespectsBudget) {
  BuildMapped(MiB(64), ComponentId(0));
  auto profiler = MakeProfiler(DefaultConfig());
  RunInterval(*profiler, VirtAddr{}, Bytes{});
  // Scans per interval <= num_ps * num_scans (plus PEBS-nominated ones).
  EXPECT_LE(profiler->last_interval_scans(), profiler->NumPageSamples() * 3 + 64);
}

TEST_F(MtmProfilerTest, ProfilingCostWithinConstraint) {
  BuildMapped(MiB(64), ComponentId(0));
  auto profiler = MakeProfiler(DefaultConfig());
  ProfileOutput out = RunInterval(*profiler, VirtAddr{}, Bytes{});
  // Cost stays within ~the 5% target of the 20 ms interval (1 ms), with
  // small slack for PEBS drains.
  EXPECT_LE(out.profiling_cost_ns, Millis(1) + Micros(200));
}

TEST_F(MtmProfilerTest, PebsNominatesSlowTierRegions) {
  // Pages on PM (slowest tier) are profiled only when the counter window
  // sees traffic (§5.5) — and the sampled page is the PEBS-captured one.
  Machine machine = Machine::OptaneFourTier(512);
  ComponentId pm = machine.TierOrder(0)[2];
  VirtAddr start = BuildMapped(MiB(16), pm);
  auto profiler = MakeProfiler(DefaultConfig());

  profiler->OnIntervalStart();
  ASSERT_TRUE(pebs_.enabled());  // the window is open
  // PM traffic to one region through the engine so PEBS observes it; the
  // traffic continues across the scan ticks, as in a live interval.
  auto traffic = [&] {
    for (int i = 0; i < 1000; ++i) {
      engine_.Apply(start + MiB(2).value() + (static_cast<u64>(i) % 512) * kPageSize, false, 0);
    }
  };
  traffic();
  for (u32 tick = 0; tick < 3; ++tick) {
    profiler->OnScanTick(tick);
    traffic();
  }
  EXPECT_FALSE(pebs_.enabled());  // closed at the first tick
  ProfileOutput out = profiler->OnIntervalEnd();
  // Exactly the trafficked region(s) got samples: hot entries exist near
  // MiB(2), none in the untouched tail.
  bool nominated_hot = false;
  for (const HotnessEntry& e : out.entries) {
    if (e.hotness > 0) {
      EXPECT_LT(e.start, start + MiB(6).value());
      nominated_hot = true;
    }
  }
  EXPECT_TRUE(nominated_hot);
}

TEST_F(MtmProfilerTest, WithoutPebsSlowTierSampledDirectly) {
  Machine machine = Machine::OptaneFourTier(512);
  ComponentId pm = machine.TierOrder(0)[2];
  VirtAddr start = BuildMapped(MiB(8), pm);
  MtmProfiler::Config config = DefaultConfig();
  config.use_pebs = false;
  auto profiler = MakeProfiler(config);
  ProfileOutput out = RunInterval(*profiler, start, MiB(8));
  double max_hot = 0;
  for (const HotnessEntry& e : out.entries) {
    max_hot = std::max(max_hot, e.hotness);
  }
  EXPECT_GT(max_hot, 2.0);  // found hot pages without counter assist
}

TEST_F(MtmProfilerTest, HintFaultsResolvePreferredSocket) {
  VirtAddr start = BuildMapped(MiB(4), ComponentId(0));
  MtmProfiler::Config config = DefaultConfig();
  config.hint_fault_period = 1;  // arm aggressively for the test
  auto profiler = MakeProfiler(config);
  for (int i = 0; i < 3; ++i) {
    profiler->OnIntervalStart();
    for (u32 tick = 0; tick < 3; ++tick) {
      // All traffic from socket 1.
      for (VirtAddr a = start; a < start + MiB(4).value(); a += kPageSize) {
        engine_.Apply(a, false, /*socket=*/1);
      }
      profiler->OnScanTick(tick);
    }
    ProfileOutput out = profiler->OnIntervalEnd();
    if (i == 2) {
      int socket1 = 0;
      for (const HotnessEntry& e : out.entries) {
        socket1 += e.preferred_socket == 1;
      }
      EXPECT_GT(socket1, 0);
    }
  }
}

TEST_F(MtmProfilerTest, AblationFlagsChangeBehavior) {
  BuildMapped(MiB(32), ComponentId(0));
  MtmProfiler::Config config = DefaultConfig();
  config.adaptive_regions = false;
  auto no_amr = MakeProfiler(config);
  ProfileOutput out = RunInterval(*no_amr, VirtAddr{}, Bytes{});
  EXPECT_EQ(out.regions_merged, 0u);
  EXPECT_EQ(out.regions_split, 0u);
  EXPECT_EQ(no_amr->regions().size(), MiB(32) / kHugePageBytes);
}

TEST_F(MtmProfilerTest, MemoryOverheadSmall) {
  BuildMapped(MiB(64), ComponentId(0));
  auto profiler = MakeProfiler(DefaultConfig());
  RunInterval(*profiler, VirtAddr{}, Bytes{});
  Bytes overhead = profiler->MemoryOverheadBytes();
  EXPECT_GT(overhead, Bytes{});
  // Table 5: well under 0.1% of the workload footprint.
  EXPECT_LT(overhead, MiB(64) / 1000 + KiB(64));
}

TEST_F(MtmProfilerTest, HotBytesTracksHotVolume) {
  VirtAddr start = BuildMapped(MiB(32), ComponentId(0));
  auto profiler = MakeProfiler(DefaultConfig());
  ProfileOutput out;
  for (int i = 0; i < 4; ++i) {
    out = RunInterval(*profiler, start, MiB(4));
  }
  EXPECT_GE(out.hot_bytes, MiB(3));
  EXPECT_LE(out.hot_bytes, MiB(12));
}

}  // namespace
}  // namespace mtm
