// Tests for access-trace recording and replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/common/units.h"
#include "src/mem/address_space.h"
#include "src/workloads/gups.h"
#include "src/workloads/trace.h"
#include "src/workloads/workload.h"

namespace mtm {
namespace {

std::string TempTracePath(const char* tag) {
  return std::string(::testing::TempDir()) + "/mtm_trace_" + tag + ".bin";
}

Workload::Params SmallParams() {
  Workload::Params p;
  p.footprint_bytes = MiB(32);
  p.num_threads = 8;
  p.seed = 11;
  return p;
}

TEST(TracePackTest, RoundTrip) {
  VirtAddr base{0x5500'0000'0000ull};
  for (u64 offset : {u64{0}, u64{4096}, GiB(1).value(), (u64{1} << 48) - 8}) {
    for (u32 thread : {0u, 7u, 16383u}) {
      for (bool write : {false, true}) {
        u64 packed = PackRecord(base + offset, base, thread, write);
        MemAccess out;
        UnpackRecord(packed, base, &out);
        EXPECT_EQ(out.addr, base + offset);
        EXPECT_EQ(out.thread, thread);
        EXPECT_EQ(out.is_write, write);
      }
    }
  }
}

TEST(TraceTest, RecordThenReplayIdenticalStream) {
  std::string path = TempTracePath("roundtrip");
  std::vector<MemAccess> original(4096);
  std::vector<u64> vma_offsets;  // record-time VMA starts relative to base

  {
    auto gups = std::make_unique<GupsWorkload>(SmallParams());
    TraceRecorder recorder(std::move(gups), path);
    AddressSpace as;
    recorder.Build(as);
    for (const Vma& vma : as.vmas()) {
      vma_offsets.push_back(vma.start - as.vmas().front().start);
    }
    ASSERT_EQ(recorder.NextBatch(original.data(), original.size()), original.size());
    ASSERT_TRUE(recorder.Finish().ok());
    EXPECT_EQ(recorder.records_written(), original.size());
  }

  auto replay = TraceReplayWorkload::Open(path, SmallParams());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  AddressSpace as;
  (*replay)->Build(as);
  ASSERT_EQ(as.vmas().size(), vma_offsets.size());
  for (std::size_t i = 0; i < as.vmas().size(); ++i) {
    EXPECT_EQ(as.vmas()[i].start - as.vmas().front().start, vma_offsets[i]);
  }
  std::vector<MemAccess> replayed(original.size());
  ASSERT_EQ((*replay)->NextBatch(replayed.data(), replayed.size()), replayed.size());
  VirtAddr base = as.vmas().front().start;
  for (std::size_t i = 0; i < original.size(); ++i) {
    // Same offsets from the base, same thread and r/w bits.
    EXPECT_EQ(replayed[i].addr - base, original[i].addr - base);
    EXPECT_EQ(replayed[i].thread, original[i].thread);
    EXPECT_EQ(replayed[i].is_write, original[i].is_write);
  }
  std::remove(path.c_str());
}

TEST(TraceTest, ReplayLoopsAtEnd) {
  std::string path = TempTracePath("loop");
  {
    auto gups = std::make_unique<GupsWorkload>(SmallParams());
    TraceRecorder recorder(std::move(gups), path);
    AddressSpace as;
    recorder.Build(as);
    std::vector<MemAccess> buf(512);
    recorder.NextBatch(buf.data(), buf.size());
    ASSERT_TRUE(recorder.Finish().ok());
  }
  auto replay = TraceReplayWorkload::Open(path, SmallParams());
  ASSERT_TRUE(replay.ok());
  AddressSpace as;
  (*replay)->Build(as);
  std::vector<MemAccess> buf(2048);
  ASSERT_EQ((*replay)->NextBatch(buf.data(), buf.size()), buf.size());
  EXPECT_GE((*replay)->loops(), 1u);
  // The stream repeats with period 512.
  EXPECT_EQ(buf[0].addr, buf[512].addr);
  EXPECT_EQ(buf[100].addr, buf[612].addr);
  std::remove(path.c_str());
}

TEST(TraceTest, OpenMissingFileFails) {
  auto replay = TraceReplayWorkload::Open("/nonexistent/trace.bin", SmallParams());
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kNotFound);
}

TEST(TraceTest, OpenGarbageFails) {
  std::string path = TempTracePath("garbage");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("not a trace at all", 1, 18, f);
  std::fclose(f);
  auto replay = TraceReplayWorkload::Open(path, SmallParams());
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TraceTest, ThpFlagsPreserved) {
  std::string path = TempTracePath("thp");
  std::vector<bool> recorded_thp;
  {
    auto gups = std::make_unique<GupsWorkload>(SmallParams());
    TraceRecorder recorder(std::move(gups), path);
    AddressSpace as;
    recorder.Build(as);
    for (const Vma& vma : as.vmas()) {
      recorded_thp.push_back(vma.thp);
    }
    std::vector<MemAccess> buf(64);
    recorder.NextBatch(buf.data(), buf.size());
    ASSERT_TRUE(recorder.Finish().ok());
  }
  auto replay = TraceReplayWorkload::Open(path, SmallParams());
  ASSERT_TRUE(replay.ok());
  AddressSpace as;
  (*replay)->Build(as);
  ASSERT_EQ(as.vmas().size(), recorded_thp.size());
  for (std::size_t i = 0; i < recorded_thp.size(); ++i) {
    EXPECT_EQ(as.vmas()[i].thp, recorded_thp[i]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mtm
